package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 7}
	if r != want {
		t.Fatalf("NewRect(3,7,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect should be valid: %v", r)
	}
}

func TestRectFromPoint(t *testing.T) {
	p := Point{X: 4, Y: -2}
	r := RectFromPoint(p)
	if r.Area() != 0 {
		t.Errorf("point rect area = %g, want 0", r.Area())
	}
	if !r.ContainsPoint(p) {
		t.Errorf("point rect should contain its point")
	}
	if c := r.Center(); c != p {
		t.Errorf("center = %v, want %v", c, p)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{0, 0, 0, 0}, true},
		{Rect{1, 0, 0, 1}, false},
		{Rect{0, 1, 1, 0}, false},
		{Rect{math.NaN(), 0, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestSideAndMargin(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 10}
	if got := r.Side(0); got != 3 {
		t.Errorf("Side(0) = %g, want 3", got)
	}
	if got := r.Side(1); got != 8 {
		t.Errorf("Side(1) = %g, want 8", got)
	}
	if got := r.Margin(); got != 11 {
		t.Errorf("Margin = %g, want 11", got)
	}
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %g, want 24", got)
	}
}

func TestUnionContains(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 3, 5, 4}
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatalf("union %v must contain both operands", u)
	}
	if u != (Rect{0, 0, 5, 4}) {
		t.Fatalf("union = %v, want [0,5]x[0,4]", u)
	}
}

func TestIntersection(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got, ok := a.Intersection(b)
	if !ok || got != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersection = %v,%v; want [2,4]x[2,4],true", got, ok)
	}
	c := Rect{5, 5, 6, 6}
	if _, ok := a.Intersection(c); ok {
		t.Fatalf("disjoint rects must not intersect")
	}
	// Touching edges intersect under closed semantics.
	d := Rect{4, 0, 5, 4}
	if inter, ok := a.Intersection(d); !ok || inter.Area() != 0 {
		t.Fatalf("touching rects: got %v,%v; want zero-area,true", inter, ok)
	}
}

func TestOverlapArea(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{2, 2, 6, 6}, 4},
		{Rect{5, 5, 6, 6}, 0},
		{Rect{4, 0, 5, 4}, 0}, // edge touch
		{Rect{1, 1, 2, 2}, 1}, // containment
		{a, 16},
	}
	for _, c := range cases {
		if got := a.OverlapArea(c.b); got != c.want {
			t.Errorf("OverlapArea(%v,%v) = %g, want %g", a, c.b, got, c.want)
		}
	}
}

func TestAxisDist(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{3, 0, 4, 1}
	if got := a.AxisDist(b, 0); got != 2 {
		t.Errorf("x axis dist = %g, want 2", got)
	}
	if got := a.AxisDist(b, 1); got != 0 {
		t.Errorf("y axis dist = %g, want 0", got)
	}
	if got := b.AxisDist(a, 0); got != 2 {
		t.Errorf("axis dist must be symmetric; got %g", got)
	}
}

func TestMinDistKnownValues(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{2, 0, 3, 1}, 1},               // side by side
		{Rect{0, 3, 1, 4}, 2},               // stacked
		{Rect{4, 5, 6, 7}, 5},               // 3-4-5 diagonal
		{Rect{0.5, 0.5, 2, 2}, 0},           // overlapping
		{Rect{1, 1, 2, 2}, 0},               // corner touch
		{RectFromPoint(Point{4, 5}), 5},     // point target
		{RectFromPoint(Point{0.5, 0.5}), 0}, // point inside
		{RectFromPoint(Point{-3, 0.5}), 3},  // point left
	}
	for _, c := range cases {
		if got := a.MinDist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v,%v) = %g, want %g", a, c.b, got, c.want)
		}
	}
}

func TestMaxDistKnownValues(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 0, 3, 1}
	// Farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1)
	if got, want := a.MaxDist(b), math.Sqrt(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist = %g, want %g", got, want)
	}
	if got, want := a.MaxDist(a), math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist(self) = %g, want diagonal %g", got, want)
	}
}

func TestCenterDist(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{3, 4, 5, 4}
	// centers (1,1) and (4,4): distance sqrt(9+9)
	if got, want := a.CenterDist(b), math.Sqrt(18); math.Abs(got-want) > 1e-12 {
		t.Errorf("CenterDist = %g, want %g", got, want)
	}
}

func randRect(rng *rand.Rand) Rect {
	return NewRect(rng.Float64()*100, rng.Float64()*100,
		rng.Float64()*100, rng.Float64()*100)
}

// Property: axisDist(a,b) <= minDist(a,b) <= maxDist(a,b) and
// axis distances lower-bound the real distance on each axis.
func TestDistanceOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		min := a.MinDist(b)
		max := a.MaxDist(b)
		for axis := 0; axis < Dims; axis++ {
			ad := a.AxisDist(b, axis)
			if ad > min+1e-9 {
				t.Fatalf("axisDist[%d]=%g > minDist=%g for %v,%v", axis, ad, min, a, b)
			}
		}
		if min > max+1e-9 {
			t.Fatalf("minDist=%g > maxDist=%g for %v,%v", min, max, a, b)
		}
		if a.Intersects(b) && min != 0 {
			t.Fatalf("intersecting rects must have minDist 0, got %g", min)
		}
		if !a.Intersects(b) && min == 0 {
			t.Fatalf("disjoint rects must have minDist > 0: %v %v", a, b)
		}
	}
}

// Property: union is commutative, idempotent, and monotone in area.
func TestUnionProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(clamp(x1), clamp(y1), clamp(x2), clamp(y2))
		b := NewRect(clamp(x3), clamp(y3), clamp(x4), clamp(y4))
		u := a.Union(b)
		return u == b.Union(a) &&
			u.Union(a) == u &&
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinDist is symmetric and satisfies identity on overlap.
func TestMinDistSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := randRect(rng), randRect(rng)
		if d1, d2 := a.MinDist(b), b.MinDist(a); d1 != d2 {
			t.Fatalf("MinDist not symmetric: %g vs %g", d1, d2)
		}
	}
}

// Property: enlargement is non-negative and zero iff containment.
func TestEnlargementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a, b := randRect(rng), randRect(rng)
		e := a.Enlargement(b)
		if e < -1e-9 {
			t.Fatalf("negative enlargement %g", e)
		}
		if a.Contains(b) && e > 1e-9 {
			t.Fatalf("containment must imply zero enlargement, got %g", e)
		}
	}
}

// Property: MinDist between rects equals the brute-force min over a
// sampled grid of boundary points (sanity via discretization).
func TestMinDistAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a, b := randRect(rng), randRect(rng)
		want := a.MinDist(b)
		got := sampledMinDist(a, b, 20)
		// sampling can only overestimate
		if got < want-1e-9 {
			t.Fatalf("sampled %g < analytic %g for %v,%v", got, want, a, b)
		}
		if a.Intersects(b) {
			continue
		}
		// With 20x20 samples the overestimate is bounded by the sum of
		// sample pitches along each side.
		pitch := (a.Side(0) + a.Side(1) + b.Side(0) + b.Side(1)) / 20
		if got > want+2*pitch+1e-9 {
			t.Fatalf("sampled %g too far above analytic %g (pitch %g)", got, want, pitch)
		}
	}
}

func sampledMinDist(a, b Rect, n int) float64 {
	best := math.Inf(1)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			pa := Point{
				X: a.MinX + a.Side(0)*float64(i)/float64(n),
				Y: a.MinY + a.Side(1)*float64(j)/float64(n),
			}
			for k := 0; k <= n; k++ {
				for l := 0; l <= n; l++ {
					pb := Point{
						X: b.MinX + b.Side(0)*float64(k)/float64(n),
						Y: b.MinY + b.Side(1)*float64(l)/float64(n),
					}
					dx, dy := pa.X-pb.X, pa.Y-pb.Y
					if d := math.Sqrt(dx*dx + dy*dy); d < best {
						best = d
					}
				}
			}
		}
	}
	return best
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestPointCoord(t *testing.T) {
	p := Point{X: 1, Y: 2}
	if p.Coord(0) != 1 || p.Coord(1) != 2 {
		t.Fatalf("Coord mismatch: %v", p)
	}
}

func BenchmarkMinDist(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]Rect, 1024)
	for i := range rects {
		rects[i] = randRect(rng)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rects[i%1024].MinDist(rects[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkAxisDist(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]Rect, 1024)
	for i := range rects {
		rects[i] = randRect(rng)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rects[i%1024].AxisDist(rects[(i+7)%1024], 0)
	}
	_ = sink
}
