package geom

import (
	"encoding/binary"
	"math"
	"testing"
)

// batchMinDistAt wraps the batch kernels as a scalar (a, b) MinDist
// so the shared partition-boundary table can drive them: b is
// embedded at position idx of an n-wide SoA column set whose other
// lanes hold decoy rectangles, and the kernel result for that lane is
// returned. Running every boundary case through a mid-slice lane (not
// a one-element batch) is what actually exercises the vector path.
func batchColumns(b Rect, n, idx int) (minX, minY, maxX, maxY []float64) {
	minX = make([]float64, n)
	minY = make([]float64, n)
	maxX = make([]float64, n)
	maxY = make([]float64, n)
	for i := 0; i < n; i++ {
		d := float64(i) * 17.5
		minX[i], minY[i], maxX[i], maxY[i] = d, -d, d+1, -d+1
	}
	minX[idx], minY[idx], maxX[idx], maxY[idx] = b.MinX, b.MinY, b.MaxX, b.MaxY
	return minX, minY, maxX, maxY
}

func batchMinDistAt(a, b Rect, n, idx int) float64 {
	minX, minY, maxX, maxY := batchColumns(b, n, idx)
	dst := make([]float64, n)
	MinDistBatch(dst, a, minX, minY, maxX, maxY)
	return dst[idx]
}

func batchMinDistSqAt(a, b Rect, n, idx int) float64 {
	minX, minY, maxX, maxY := batchColumns(b, n, idx)
	dst := make([]float64, n)
	MinDistSqBatch(dst, a, minX, minY, maxX, maxY)
	return dst[idx]
}

// TestPartitionBoundaryBatch runs the batch kernels through the same
// partition-boundary table as the scalar Rect methods: the scalar and
// batch paths must agree exactly on touching and overlapping
// partition boundaries, or the sharded executor's pruning decisions
// would depend on which path computed the bound.
func TestPartitionBoundaryBatch(t *testing.T) {
	shapes := []struct {
		name   string
		n, idx int
	}{
		{"single", 1, 0},
		{"first", 7, 0},
		{"middle", 7, 3},
		{"last", 7, 6},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			checkBoundaryMinDist(t,
				func(a, b Rect) float64 { return batchMinDistAt(a, b, sh.n, sh.idx) },
				func(a, b Rect) float64 { return batchMinDistSqAt(a, b, sh.n, sh.idx) },
			)
		})
	}
}

// TestBatchAxisDistBoundary pins AxisDistBatch against the scalar
// AxisDist on the boundary table, per axis.
func TestBatchAxisDistBoundary(t *testing.T) {
	for _, tc := range boundaryMinDistCases() {
		dst := make([]float64, 1)
		for axis := 0; axis < Dims; axis++ {
			lo := []float64{tc.b.Min(axis)}
			hi := []float64{tc.b.Max(axis)}
			AxisDistBatch(dst, tc.a.Min(axis), tc.a.Max(axis), lo, hi)
			if want := tc.a.AxisDist(tc.b, axis); dst[0] != want {
				t.Errorf("%s: AxisDistBatch axis %d = %v, scalar %v", tc.name, axis, dst[0], want)
			}
		}
	}
}

// TestBatchKernelsZeroAlloc pins the hot-path contract: with a
// caller-provided destination the kernels allocate nothing, so the
// leaf-pair refinement loops stay allocation-free per pair. Sits
// alongside TestTraceOffNoAllocs / TestRegistryOffNoAllocs as the
// steady-state allocation gates.
func TestBatchKernelsZeroAlloc(t *testing.T) {
	const n = 128
	q := NewRect(3, 4, 5, 6)
	minX, minY, maxX, maxY := batchColumns(NewRect(0, 0, 1, 1), n, n/2)
	dst := make([]float64, n)
	if avg := testing.AllocsPerRun(100, func() {
		MinDistSqBatch(dst, q, minX, minY, maxX, maxY)
	}); avg != 0 {
		t.Errorf("MinDistSqBatch allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		MinDistBatch(dst, q, minX, minY, maxX, maxY)
	}); avg != 0 {
		t.Errorf("MinDistBatch allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		AxisDistBatch(dst, 0.25, 0.75, minX, maxX)
	}); avg != 0 {
		t.Errorf("AxisDistBatch allocates %v per call, want 0", avg)
	}
}

// TestSetBatchTailMutation checks the fault-injection hook itself:
// enabled, the last lane of a multi-lane MinDistSqBatch is clobbered
// with its neighbor (the planted off-by-one in tail handling the
// simtest oracle must catch); restored, results are correct again.
func TestSetBatchTailMutation(t *testing.T) {
	q := NewRect(0, 0, 1, 1)
	minX, minY, maxX, maxY := batchColumns(NewRect(0, 0, 1, 1), 4, 0)
	dst := make([]float64, 4)
	restore := SetBatchTailMutation()
	MinDistSqBatch(dst, q, minX, minY, maxX, maxY)
	if dst[3] != dst[2] {
		t.Fatalf("mutation enabled: tail lane %v, want clobbered to %v", dst[3], dst[2])
	}
	restore()
	MinDistSqBatch(dst, q, minX, minY, maxX, maxY)
	r3 := Rect{MinX: minX[3], MinY: minY[3], MaxX: maxX[3], MaxY: maxY[3]}
	if want := q.MinDistSq(r3); dst[3] != want {
		t.Fatalf("after restore: tail lane %v, want %v", dst[3], want)
	}
}

// FuzzBatchKernels is the differential fuzz target of the batch
// kernels: for arbitrary rectangle slices — including NaN, ±Inf,
// inverted intervals, and degenerate zero-area rects — the batch
// results must be bit-identical (Float64bits, so NaN payloads and
// signed zeros count) to the scalar AxisDist/MinDistSq/MinDist
// applied element-wise.
func FuzzBatchKernels(f *testing.F) {
	le := binary.LittleEndian
	mk := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			le.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	nan, inf := math.NaN(), math.Inf(1)
	// Query rect + one lane of ordinary geometry.
	f.Add(1.0, 2.0, 3.0, 4.0, mk(0, 0, 1, 1))
	// NaN coordinates in both the query and a lane.
	f.Add(nan, 0.0, 1.0, 1.0, mk(0, nan, 1, 1, 2, 2, 3, 3))
	// Infinities and an inverted (Max < Min) interval.
	f.Add(0.0, 0.0, inf, 1.0, mk(5, 5, -5, -5, -inf, 0, inf, 0))
	// Degenerate points, signed zero.
	f.Add(0.0, math.Copysign(0, -1), 0.0, 0.0, mk(0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, qa, qb, qc, qd float64, raw []byte) {
		n := len(raw) / 32 // four float64 per lane
		if n > 256 {
			n = 256
		}
		q := Rect{MinX: qa, MinY: qb, MaxX: qc, MaxY: qd}
		minX := make([]float64, n)
		minY := make([]float64, n)
		maxX := make([]float64, n)
		maxY := make([]float64, n)
		for i := 0; i < n; i++ {
			minX[i] = math.Float64frombits(le.Uint64(raw[32*i:]))
			minY[i] = math.Float64frombits(le.Uint64(raw[32*i+8:]))
			maxX[i] = math.Float64frombits(le.Uint64(raw[32*i+16:]))
			maxY[i] = math.Float64frombits(le.Uint64(raw[32*i+24:]))
		}
		lane := func(i int) Rect {
			return Rect{MinX: minX[i], MinY: minY[i], MaxX: maxX[i], MaxY: maxY[i]}
		}

		dst := make([]float64, n)
		MinDistSqBatch(dst, q, minX, minY, maxX, maxY)
		for i := 0; i < n; i++ {
			if want := q.MinDistSq(lane(i)); math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("MinDistSqBatch lane %d/%d: %x, scalar %x (q=%v lane=%v)",
					i, n, math.Float64bits(dst[i]), math.Float64bits(want), q, lane(i))
			}
		}
		MinDistBatch(dst, q, minX, minY, maxX, maxY)
		for i := 0; i < n; i++ {
			if want := q.MinDist(lane(i)); math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("MinDistBatch lane %d/%d: %x, scalar %x (q=%v lane=%v)",
					i, n, math.Float64bits(dst[i]), math.Float64bits(want), q, lane(i))
			}
			// Symmetry: the join's orientation normalization relies on
			// MinDist(a, b) == MinDist(b, a) bit-for-bit. That only holds
			// for non-inverted intervals (an inverted Max < Min rect
			// measures its gap from different endpoints per order, and no
			// such rect survives rtree validation), so restrict the
			// assertion to valid operands; NaN coordinates are fine — both
			// orders collapse to a zero axis gap.
			valid := func(r Rect) bool {
				return !(r.MaxX < r.MinX) && !(r.MaxY < r.MinY)
			}
			if rev := lane(i).MinDist(q); valid(q) && valid(lane(i)) &&
				math.Float64bits(dst[i]) != math.Float64bits(rev) {
				t.Fatalf("MinDist asymmetric at lane %d: %x vs %x", i, math.Float64bits(dst[i]), math.Float64bits(rev))
			}
		}
		for axis := 0; axis < Dims; axis++ {
			lo, hi := minX, maxX
			if axis == 1 {
				lo, hi = minY, maxY
			}
			AxisDistBatch(dst, q.Min(axis), q.Max(axis), lo, hi)
			for i := 0; i < n; i++ {
				if want := q.AxisDist(lane(i), axis); math.Float64bits(dst[i]) != math.Float64bits(want) {
					t.Fatalf("AxisDistBatch axis %d lane %d: %x, scalar %x", axis, i, math.Float64bits(dst[i]), math.Float64bits(want))
				}
			}
		}
	})
}
