package geom

import "math"

// Batch distance kernels. The struct-of-arrays leaf layout
// (rtree.NodeSoA) stores node MBRs as four parallel coordinate slices;
// these kernels compute one fixed rectangle's distance against every
// slice element in a single pass over contiguous float64 memory. Each
// kernel is bit-identical to its scalar reference (AxisDist, MinDistSq,
// MinDist applied element-wise): the same IEEE operations in the same
// order, so NaN, ±Inf, and signed-zero inputs produce exactly the
// scalar results. FuzzBatchKernels pins that equivalence.
//
// The `_ = dst[n-1]` statements hoist the slice bounds checks out of
// the loops: after one explicit check against the final index, the
// compiler proves every in-loop access in range and drops the per-
// element checks.

// AxisDistBatch writes into dst[i] the axis distance between the fixed
// interval [qlo, qhi] and each interval [lo[i], hi[i]]: zero when the
// projections overlap, otherwise the gap between them. It is the batch
// form of Rect.AxisDist with q as the first operand. lo, hi, and dst
// must have equal length.
func AxisDistBatch(dst []float64, qlo, qhi float64, lo, hi []float64) {
	n := len(lo)
	if n == 0 {
		return
	}
	_ = dst[n-1]
	_ = hi[n-1]
	for i := 0; i < n; i++ {
		d := 0.0
		switch {
		case qhi < lo[i]:
			d = lo[i] - qhi
		case hi[i] < qlo:
			d = qlo - hi[i]
		}
		dst[i] = d
	}
}

// MinDistSqBatch writes into dst[i] the squared minimum Euclidean
// distance between q and the rectangle [minX[i],maxX[i]] x
// [minY[i],maxY[i]]. It is the batch form of Rect.MinDistSq. All five
// slices must have equal length.
func MinDistSqBatch(dst []float64, q Rect, minX, minY, maxX, maxY []float64) {
	n := len(minX)
	if n == 0 {
		return
	}
	_ = dst[n-1]
	_ = minY[n-1]
	_ = maxX[n-1]
	_ = maxY[n-1]
	for i := 0; i < n; i++ {
		dx := 0.0
		switch {
		case q.MaxX < minX[i]:
			dx = minX[i] - q.MaxX
		case maxX[i] < q.MinX:
			dx = q.MinX - maxX[i]
		}
		dy := 0.0
		switch {
		case q.MaxY < minY[i]:
			dy = minY[i] - q.MaxY
		case maxY[i] < q.MinY:
			dy = q.MinY - maxY[i]
		}
		dst[i] = dx*dx + dy*dy
	}
	mutateBatchTail(dst)
}

// MinDistBatch writes into dst[i] the minimum Euclidean distance
// between q and the i-th rectangle: Sqrt of MinDistSqBatch, the batch
// form of Rect.MinDist.
func MinDistBatch(dst []float64, q Rect, minX, minY, maxX, maxY []float64) {
	MinDistSqBatch(dst, q, minX, minY, maxX, maxY)
	for i := range dst {
		dst[i] = math.Sqrt(dst[i])
	}
}
