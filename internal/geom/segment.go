package geom

import "math"

// Segment is a line segment between two points — the exact geometry of
// street and river data whose MBRs the R-tree indexes. It exists so
// distance joins over such data can rank by true segment distances via
// a refiner, with the MBR distance as the index-level lower bound.
type Segment struct {
	A, B Point
}

// Bounds returns the segment's MBR.
func (s Segment) Bounds() Rect {
	return NewRect(s.A.X, s.A.Y, s.B.X, s.B.Y)
}

// Length returns the segment's length.
func (s Segment) Length() float64 {
	return math.Hypot(s.B.X-s.A.X, s.B.Y-s.A.Y)
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		return math.Hypot(p.X-s.A.X, p.Y-s.A.Y)
	}
	// Project p onto the segment's support line, clamped to [0, 1].
	t := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / lenSq
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cx, cy := s.A.X+t*dx, s.A.Y+t*dy
	return math.Hypot(p.X-cx, p.Y-cy)
}

// orient returns the sign of the cross product (b-a) x (c-a): positive
// for a counter-clockwise turn, negative for clockwise, 0 for
// collinear.
func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether collinear point c lies within the bounding
// box of segment ab.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// Intersects reports whether the two segments share at least one
// point, including endpoint touches and collinear overlap.
func (s Segment) Intersects(o Segment) bool {
	d1 := orient(o.A, o.B, s.A)
	d2 := orient(o.A, o.B, s.B)
	d3 := orient(s.A, s.B, o.A)
	d4 := orient(s.A, s.B, o.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(o.A, o.B, s.A):
		return true
	case d2 == 0 && onSegment(o.A, o.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, o.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, o.B):
		return true
	}
	return false
}

// DistToSegment returns the minimum distance between the two segments:
// zero when they intersect, otherwise the smallest of the four
// endpoint-to-segment distances (for disjoint segments the minimum is
// always attained at an endpoint).
func (s Segment) DistToSegment(o Segment) float64 {
	if s.Intersects(o) {
		return 0
	}
	d := s.DistToPoint(o.A)
	if v := s.DistToPoint(o.B); v < d {
		d = v
	}
	if v := o.DistToPoint(s.A); v < d {
		d = v
	}
	if v := o.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}

// DistToRect returns the minimum distance between the segment and a
// rectangle: zero when they touch or the segment lies inside,
// otherwise the smallest distance from the segment to the rectangle's
// boundary edges. The natural refiner for joins between segment data
// and area features indexed by their MBRs.
func (s Segment) DistToRect(r Rect) float64 {
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return 0
	}
	corners := [4]Point{
		{X: r.MinX, Y: r.MinY},
		{X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY},
		{X: r.MinX, Y: r.MaxY},
	}
	best := math.Inf(1)
	for i := 0; i < 4; i++ {
		edge := Segment{A: corners[i], B: corners[(i+1)%4]}
		if d := s.DistToSegment(edge); d < best {
			best = d
			if best == 0 {
				return 0
			}
		}
	}
	return best
}
