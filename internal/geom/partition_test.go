package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// boundaryCase is one partition-boundary geometry with its exact
// MinDist and MinDistSq: the sharded executor (internal/shard) prunes
// partition pairs on the strict comparison mindist(shardMBR, shardMBR)
// > cutoff, so the boundary behavior — touching MBRs, overlapping
// MBRs, degenerate zero-area MBRs — decides whether
// boundary-straddling result pairs survive pruning.
type boundaryCase struct {
	name   string
	a, b   Rect
	want   float64
	wantSq float64
}

// boundaryMinDistCases is the shared partition-boundary table: every
// MinDist implementation — the scalar Rect methods and the batch
// kernels over SoA columns — must produce these exact values, in both
// argument orders (the sharded executor's cross-pair orientation
// normalization is only bit-exact because MinDist is symmetric).
func boundaryMinDistCases() []boundaryCase {
	return []boundaryCase{
		{"edge-touching", NewRect(0, 0, 1, 1), NewRect(1, 0, 2, 1), 0, 0},
		{"corner-touching", NewRect(0, 0, 1, 1), NewRect(1, 1, 2, 2), 0, 0},
		{"overlapping", NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3), 0, 0},
		{"contained", NewRect(0, 0, 4, 4), NewRect(1, 1, 2, 2), 0, 0},
		{"axis-separated", NewRect(0, 0, 1, 1), NewRect(3, 0, 4, 1), 2, 4},
		{"diagonal-separated", NewRect(0, 0, 1, 1), NewRect(2, 2, 3, 3), math.Sqrt2, 2},
		// Degenerate zero-area MBRs: a partition holding a single point
		// object collapses its tight MBR to that point.
		{"point-inside", NewRect(0, 0, 1, 1), NewRect(0.5, 0.5, 0.5, 0.5), 0, 0},
		{"point-on-corner", NewRect(0, 0, 1, 1), NewRect(1, 1, 1, 1), 0, 0},
		{"point-outside", NewRect(0, 0, 1, 1), NewRect(5, 5, 5, 5), math.Sqrt(32), 32},
		// Zero-width line MBR (vertical segment of point objects).
		{"line-separated", NewRect(0, 0, 1, 1), NewRect(2, 0, 2, 1), 1, 1},
		{"line-touching", NewRect(0, 0, 1, 1), NewRect(1, 0, 1, 1), 0, 0},
		{"two-points", NewRect(1, 2, 1, 2), NewRect(4, 6, 4, 6), 5, 25},
		{"coincident-points", NewRect(3, 3, 3, 3), NewRect(3, 3, 3, 3), 0, 0},
	}
}

// checkBoundaryMinDist runs one MinDist/MinDistSq implementation
// through the shared partition-boundary table, including the symmetry
// requirement. minDist and minDistSq abstract over the path under
// test: the scalar tests pass the Rect methods, the batch tests wrap
// the kernels.
func checkBoundaryMinDist(t *testing.T, minDist, minDistSq func(a, b Rect) float64) {
	t.Helper()
	for _, tc := range boundaryMinDistCases() {
		t.Run(tc.name, func(t *testing.T) {
			if got := minDist(tc.a, tc.b); got != tc.want {
				t.Errorf("MinDist(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if got, rev := minDist(tc.a, tc.b), minDist(tc.b, tc.a); got != rev {
				t.Errorf("MinDist asymmetric: %v vs %v", got, rev)
			}
			if sq := minDistSq(tc.a, tc.b); sq != tc.wantSq {
				t.Errorf("MinDistSq(%v, %v) = %v, want %v", tc.a, tc.b, sq, tc.wantSq)
			}
		})
	}
}

func TestPartitionBoundaryMinDist(t *testing.T) {
	checkBoundaryMinDist(t,
		func(a, b Rect) float64 { return a.MinDist(b) },
		func(a, b Rect) float64 { return a.MinDistSq(b) },
	)
}

// TestPartitionAxisDistDegenerate pins AxisDist on touching and
// zero-extent inputs, the per-axis building block under MinDist.
func TestPartitionAxisDistDegenerate(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	if d := a.AxisDist(NewRect(1, 0, 2, 1), 0); d != 0 {
		t.Errorf("touching AxisDist x = %v, want 0", d)
	}
	if d := a.AxisDist(NewRect(3, 0, 4, 1), 0); d != 2 {
		t.Errorf("separated AxisDist x = %v, want 2", d)
	}
	p := NewRect(0.5, 7, 0.5, 7) // zero extent on both axes
	if d := a.AxisDist(p, 0); d != 0 {
		t.Errorf("interior point AxisDist x = %v, want 0", d)
	}
	if d := a.AxisDist(p, 1); d != 6 {
		t.Errorf("point AxisDist y = %v, want 6", d)
	}
}

// TestPartitionPruningSafety is the property behind the sharded
// executor's bounds-only pruning, checked in pure geometry: partition
// two random datasets into a grid by MBR center with tight per-cell
// MBRs (the same scheme internal/shard uses), compute the exact k-th
// nearest pair distance by brute force, and verify that every
// partition pair whose MBR-to-MBR mindist strictly exceeds that k-th
// distance contains only pairs farther than it — i.e. pruning such a
// pair can never drop an oracle result, ties at the cutoff included.
func TestPartitionPruningSafety(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randRects := func(n int) []Rect {
			rs := make([]Rect, n)
			for i := range rs {
				x := rng.Float64() * 100
				y := rng.Float64() * 100
				// Mix extended, line-degenerate, and point-degenerate
				// MBRs so the tight cell MBRs exercise the boundary
				// cases above.
				w := rng.Float64() * 3
				h := rng.Float64() * 3
				switch i % 5 {
				case 3:
					w = 0
				case 4:
					w, h = 0, 0
				}
				rs[i] = NewRect(x, y, x+w, y+h)
			}
			return rs
		}
		left := randRects(120)
		right := randRects(80)

		world := left[0]
		for _, r := range left[1:] {
			world = world.Union(r)
		}
		for _, r := range right {
			world = world.Union(r)
		}

		const g = 3
		cellOf := func(r Rect) int {
			c := r.Center()
			coord := func(axis int) int {
				side := world.Side(axis)
				if side <= 0 {
					return 0
				}
				i := int(float64(g) * (c.Coord(axis) - world.Min(axis)) / side)
				if i < 0 {
					i = 0
				}
				if i >= g {
					i = g - 1
				}
				return i
			}
			return coord(1)*g + coord(0)
		}
		partition := func(rs []Rect) (cells [][]int, mbrs []Rect) {
			cells = make([][]int, g*g)
			mbrs = make([]Rect, g*g)
			for i, r := range rs {
				ci := cellOf(r)
				if len(cells[ci]) == 0 {
					mbrs[ci] = r
				} else {
					mbrs[ci] = mbrs[ci].Union(r)
				}
				cells[ci] = append(cells[ci], i)
			}
			return cells, mbrs
		}
		lcells, lmbrs := partition(left)
		rcells, rmbrs := partition(right)

		// Tight cell MBRs must contain their members, or the
		// MBR-to-MBR lower bound below would be unsound.
		for ci, members := range lcells {
			for _, i := range members {
				if !lmbrs[ci].Contains(left[i]) {
					t.Fatalf("seed %d: cell %d MBR %v misses member %v", seed, ci, lmbrs[ci], left[i])
				}
			}
		}

		// Brute-force oracle: the exact k-th smallest pair distance.
		dists := make([]float64, 0, len(left)*len(right))
		for _, l := range left {
			for _, r := range right {
				dists = append(dists, l.MinDist(r))
			}
		}
		sort.Float64s(dists)
		const k = 40
		kth := dists[k-1]

		pruned, checked := 0, 0
		for lc, lm := range lcells {
			if len(lm) == 0 {
				continue
			}
			for rc, rm := range rcells {
				if len(rm) == 0 {
					continue
				}
				if !(lmbrs[lc].MinDist(rmbrs[rc]) > kth) {
					continue // pair survives, nothing to prove
				}
				pruned++
				for _, i := range lm {
					for _, j := range rm {
						checked++
						if d := left[i].MinDist(right[j]); !(d > kth) {
							t.Fatalf("seed %d: pruned partition pair (%d,%d) contains oracle-range pair: dist %v <= kth %v",
								seed, lc, rc, d, kth)
						}
					}
				}
			}
		}
		if pruned == 0 {
			t.Fatalf("seed %d: no partition pair was prunable; property not exercised (kth=%v)", seed, kth)
		}
		t.Logf("seed %d: kth=%.4f, pruned pairs=%d, contained pairs verified=%d", seed, kth, pruned, checked)
	}
}
