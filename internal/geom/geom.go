// Package geom provides the planar geometric primitives used by the
// distance join algorithms: points, axis-aligned rectangles (MBRs), and
// the distance functions of Lemma 1 of the paper (minimum, maximum, and
// per-axis distances between rectangles).
//
// All coordinates are float64 and all rectangles are closed intervals
// [MinX,MaxX] x [MinY,MaxY]. Degenerate rectangles (points, horizontal
// or vertical segments) are valid.
package geom

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the space. The paper's data and
// evaluation are two-dimensional; the sweeping-axis selection of §3.2
// chooses between the Dims axes.
const Dims = 2

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Coord returns the coordinate of p along axis (0 = x, 1 = y).
func (p Point) Coord(axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Rect is an axis-aligned rectangle, the minimum bounding rectangle
// (MBR) representation used throughout the R-tree and join code.
type Rect struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// NewRect returns the rectangle with the given corner coordinates,
// normalizing so that Min <= Max on both axes.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Valid reports whether the rectangle is well-formed (Min <= Max on
// both axes and no NaN coordinates).
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Min returns the lower bound of r along axis (0 = x, 1 = y).
func (r Rect) Min(axis int) float64 {
	if axis == 0 {
		return r.MinX
	}
	return r.MinY
}

// Max returns the upper bound of r along axis (0 = x, 1 = y).
func (r Rect) Max(axis int) float64 {
	if axis == 0 {
		return r.MaxX
	}
	return r.MaxY
}

// Side returns the side length of r along axis. This is the |r|_x of
// the sweeping-index formulae (paper §3.2).
func (r Rect) Side(axis int) float64 {
	return r.Max(axis) - r.Min(axis)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r, the R*-tree split heuristic's
// "margin" measure.
func (r Rect) Margin() float64 {
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersects reports whether r and s share at least one point
// (closed-interval semantics: touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersection returns the overlap of r and s and whether it is
// non-empty. The returned rectangle is the zero Rect when empty.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// OverlapArea returns the area of the intersection of r and s, or 0 if
// they do not intersect.
func (r Rect) OverlapArea(s Rect) float64 {
	ix := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	if ix <= 0 {
		return 0
	}
	iy := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	if iy <= 0 {
		return 0
	}
	return ix * iy
}

// Enlargement returns the area increase of r needed to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// AxisDist returns the distance between the projections of r and s onto
// the given axis: zero when the projections overlap, otherwise the gap
// between them. By construction AxisDist <= MinDist, which is what
// makes it a safe cheap filter during plane sweeping (paper §3.1).
func (r Rect) AxisDist(s Rect, axis int) float64 {
	lo1, hi1 := r.Min(axis), r.Max(axis)
	lo2, hi2 := s.Min(axis), s.Max(axis)
	switch {
	case hi1 < lo2:
		return lo2 - hi1
	case hi2 < lo1:
		return lo1 - hi2
	default:
		return 0
	}
}

// MinDistSq returns the squared minimum Euclidean distance between any
// point of r and any point of s (zero when they intersect).
func (r Rect) MinDistSq(s Rect) float64 {
	dx := r.AxisDist(s, 0)
	dy := r.AxisDist(s, 1)
	return dx*dx + dy*dy
}

// MinDist returns the minimum Euclidean distance between r and s. This
// is the dist(r, s) of Lemma 1: for R-tree nodes it lower-bounds the
// distance between any pair of objects stored under them.
func (r Rect) MinDist(s Rect) float64 {
	return math.Sqrt(r.MinDistSq(s))
}

// axisSpan returns the largest coordinate gap between the projections
// of r and s onto axis, i.e. the farthest-endpoints distance.
func axisSpan(r, s Rect, axis int) float64 {
	lo := math.Min(r.Min(axis), s.Min(axis))
	hi := math.Max(r.Max(axis), s.Max(axis))
	return hi - lo
}

// MaxDist returns the maximum Euclidean distance between any point of r
// and any point of s. Used when non-object pairs are inserted into a
// distance queue (paper §3.1, footnote 1).
func (r Rect) MaxDist(s Rect) float64 {
	dx := axisSpan(r, s, 0)
	dy := axisSpan(r, s, 1)
	return math.Sqrt(dx*dx + dy*dy)
}

// CenterDist returns the Euclidean distance between the centers of r
// and s.
func (r Rect) CenterDist(s Rect) float64 {
	a, b := r.Center(), s.Center()
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}
