package sweep

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// numericIndexTerm evaluates one term of Eq. 2 with brute-force
// quadrature, the reference the closed form must match.
func numericIndexTerm(d, a0, a1, b0, b1 float64, steps int) float64 {
	alen := a1 - a0
	blen := b1 - b0
	if alen == 0 || blen == 0 || d <= 0 {
		return normalizedTerm(d, a0, a1, b0, b1) // degenerate cases handled analytically
	}
	h := alen / float64(steps)
	var sum float64
	for i := 0; i <= steps; i++ {
		u := a0 + float64(i)*h
		v := math.Min(u+d, b1) - math.Max(u, b0)
		if v < 0 {
			v = 0
		}
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * v
	}
	return sum * h / (alen * blen)
}

// Property from DESIGN.md: closed-form sweeping index equals numeric
// integration of Eq. 2 on random configurations.
func TestIndexMatchesNumericIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		r := geom.NewRect(rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100)
		s := geom.NewRect(rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100)
		d := rng.Float64() * 60
		for axis := 0; axis < geom.Dims; axis++ {
			got := Index(axis, r, s, d)
			want := numericIndexTerm(d, r.Min(axis), r.Max(axis), s.Min(axis), s.Max(axis), 20000) +
				numericIndexTerm(d, s.Min(axis), s.Max(axis), r.Min(axis), r.Max(axis), 20000)
			if math.Abs(got-want) > 1e-3*(1+want) {
				t.Fatalf("trial %d axis %d: closed form %g vs numeric %g (r=%v s=%v d=%g)",
					trial, axis, got, want, r, s, d)
			}
		}
	}
}

// Table 1 row checks for disjoint nodes (r before s with gap alpha),
// using the corrected closed forms derived from Eq. 2:
//
//	d <= alpha:                      0
//	alpha < d <= S+alpha:            (d-alpha)^2 / (2S)
//	S+alpha <= d (and d <= R+alpha): d - alpha - S/2
func TestIndexTable1DisjointRows(t *testing.T) {
	const R, S, alpha = 10.0, 4.0, 3.0
	r := geom.NewRect(0, 0, R, 1)
	s := geom.NewRect(R+alpha, 0, R+alpha+S, 1)

	cases := []struct {
		d    float64
		want float64
	}{
		{2.0, 0}, // d <= alpha
		{5.0, (5 - alpha) * (5 - alpha) / (2 * S)}, // alpha < d <= S+alpha
		{9.0, 9 - alpha - S/2},                     // S+alpha <= d <= R+alpha
	}
	for _, c := range cases {
		// Table 1 states the un-normalized integral (per unit of |s|
		// only); our term additionally divides by |r| so that the index
		// is a pair *fraction* comparable across axes. Multiply back to
		// check the row.
		got := normalizedTerm(c.d, r.MinX, r.MaxX, s.MinX, s.MaxX) * R
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("d=%g: term = %g, want %g", c.d, got, c.want)
		}
	}
	// The paper notes the second term is zero for disjoint nodes: all
	// of r's children are swept before s's first child. In Eq. 2's
	// formalization the second term slides the window from s's side
	// away from r, yielding zero overlap as well.
	if got := normalizedTerm(2.5, s.MinX, s.MaxX, r.MinX, r.MaxX); got != 0 {
		t.Errorf("second term for disjoint nodes with small window = %g, want 0", got)
	}
}

func TestIndexSymmetricInOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		r := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
		s := geom.NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
		d := rng.Float64() * 30
		for axis := 0; axis < 2; axis++ {
			if a, b := Index(axis, r, s, d), Index(axis, s, r, d); math.Abs(a-b) > 1e-9 {
				t.Fatalf("index not symmetric: %g vs %g", a, b)
			}
		}
	}
}

func TestIndexMonotoneInCutoff(t *testing.T) {
	r := geom.NewRect(0, 0, 10, 10)
	s := geom.NewRect(15, 2, 25, 8)
	prev := 0.0
	for d := 0.5; d < 40; d += 0.5 {
		idx := Index(0, r, s, d)
		if idx < prev-1e-9 {
			t.Fatalf("index must be nondecreasing in cutoff: %g after %g at d=%g", idx, prev, d)
		}
		prev = idx
	}
}

func TestIndexDegenerateRects(t *testing.T) {
	pt := geom.RectFromPoint(geom.Point{X: 5, Y: 5})
	r := geom.NewRect(0, 0, 10, 10)
	// Must not NaN/Inf.
	for axis := 0; axis < 2; axis++ {
		for _, d := range []float64{0, 0.5, 3, 100} {
			v := Index(axis, pt, r, d)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("degenerate index = %g", v)
			}
			v2 := Index(axis, pt, pt, d)
			if math.IsNaN(v2) || math.IsInf(v2, 0) {
				t.Fatalf("double-degenerate index = %g", v2)
			}
		}
	}
	// Point vs point: window of length d starting at the point covers
	// the other point iff their gap <= d... here the same point: 1+1.
	if got := Index(0, pt, pt, 1); got != 2 {
		t.Fatalf("point-point index = %g, want 2", got)
	}
}

// The motivating example of Figure 5: children spread widely along y,
// so the y axis must be selected.
func TestChooseAxisPrefersSpreadDimension(t *testing.T) {
	// Two nodes side by side horizontally, both tall and thin: spread
	// along y is large, x extents small; sweeping along y prunes more.
	r := geom.NewRect(0, 0, 2, 100)
	s := geom.NewRect(3, 0, 5, 100)
	p := Choose(r, s, 10)
	if p.Axis != 1 {
		t.Fatalf("axis = %d, want 1 (y)", p.Axis)
	}
	// Rotate the configuration: now x must win.
	r2 := geom.NewRect(0, 0, 100, 2)
	s2 := geom.NewRect(0, 3, 100, 5)
	p2 := Choose(r2, s2, 10)
	if p2.Axis != 0 {
		t.Fatalf("axis = %d, want 0 (x)", p2.Axis)
	}
}

func TestChooseInfiniteCutoffFallsBackToSpread(t *testing.T) {
	r := geom.NewRect(0, 0, 1, 50)
	s := geom.NewRect(2, 0, 3, 50)
	p := Choose(r, s, math.Inf(1))
	if p.Axis != 1 {
		t.Fatalf("axis = %d, want 1 for wider y spread", p.Axis)
	}
	p0 := Choose(r, s, 0)
	if p0.Axis != 1 {
		t.Fatalf("zero cutoff axis = %d, want 1", p0.Axis)
	}
}

func TestChooseDirection(t *testing.T) {
	// r's left edge close to s's left edge, right edges far apart:
	// left interval shorter => forward.
	r := geom.NewRect(0, 0, 4, 1)
	s := geom.NewRect(1, 0, 20, 1)
	if d := ChooseDirection(r, s, 0); d != Forward {
		t.Fatalf("direction = %v, want forward", d)
	}
	// Mirror: right interval shorter => backward.
	r2 := geom.NewRect(16, 0, 20, 1)
	s2 := geom.NewRect(0, 0, 19, 1)
	if d := ChooseDirection(r2, s2, 0); d != Backward {
		t.Fatalf("direction = %v, want backward", d)
	}
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("Direction String mismatch")
	}
}

func TestKeyAndSortEntries(t *testing.T) {
	entries := []rtree.NodeEntry{
		{Rect: geom.NewRect(5, 0, 6, 1), Ref: 0},
		{Rect: geom.NewRect(1, 0, 9, 1), Ref: 1},
		{Rect: geom.NewRect(3, 0, 4, 1), Ref: 2},
	}
	fwd := append([]rtree.NodeEntry(nil), entries...)
	SortEntries(fwd, Plan{Axis: 0, Dir: Forward})
	if fwd[0].Ref != 1 || fwd[1].Ref != 2 || fwd[2].Ref != 0 {
		t.Fatalf("forward order = %v", []uint64{fwd[0].Ref, fwd[1].Ref, fwd[2].Ref})
	}
	bwd := append([]rtree.NodeEntry(nil), entries...)
	SortEntries(bwd, Plan{Axis: 0, Dir: Backward})
	// Backward: descending Max => 9, 6, 4.
	if bwd[0].Ref != 1 || bwd[1].Ref != 0 || bwd[2].Ref != 2 {
		t.Fatalf("backward order = %v", []uint64{bwd[0].Ref, bwd[1].Ref, bwd[2].Ref})
	}
}

// Property: along a sorted candidate list, AxisGap from the current
// anchor is monotone nondecreasing (break safety) and always a lower
// bound on the true axis distance, hence on MinDist.
func TestAxisGapMonotoneAndSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		var entries []rtree.NodeEntry
		for i := 0; i < 20; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			entries = append(entries, rtree.NodeEntry{
				Rect: geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10),
			})
		}
		for _, dir := range []Direction{Forward, Backward} {
			p := Plan{Axis: trial % 2, Dir: dir}
			SortEntries(entries, p)
			anchor := entries[0]
			prev := -1.0
			for _, m := range entries[1:] {
				g := AxisGap(anchor.Rect, m.Rect, p.Axis, dir)
				if g < prev-1e-12 {
					t.Fatalf("gap not monotone: %g after %g (%v)", g, prev, dir)
				}
				prev = g
				if md := anchor.Rect.MinDist(m.Rect); g > md+1e-9 {
					t.Fatalf("gap %g exceeds MinDist %g", g, md)
				}
				if ad := anchor.Rect.AxisDist(m.Rect, p.Axis); g > ad+1e-9 {
					t.Fatalf("gap %g exceeds axis dist %g", g, ad)
				}
			}
		}
	}
}

// Property: the sweep key order itself is consistent: sorting by Key
// groups anchors so the minimum key is first.
func TestSweepOrderFirstIsAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	entries := make([]rtree.NodeEntry, 50)
	for i := range entries {
		x := rng.Float64() * 100
		entries[i] = rtree.NodeEntry{Rect: geom.NewRect(x, 0, x+rng.Float64()*5, 1)}
	}
	p := Plan{Axis: 0, Dir: Forward}
	SortEntries(entries, p)
	keys := make([]float64, len(entries))
	for i, e := range entries {
		keys[i] = Key(e.Rect, p.Axis, p.Dir)
	}
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("entries not in key order after SortEntries")
	}
}

func BenchmarkIndex(b *testing.B) {
	r := geom.NewRect(0, 0, 10, 20)
	s := geom.NewRect(5, 15, 18, 40)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Index(i%2, r, s, 7)
	}
	_ = sink
}

func BenchmarkChoose(b *testing.B) {
	r := geom.NewRect(0, 0, 10, 20)
	s := geom.NewRect(5, 15, 18, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Choose(r, s, 7)
	}
}
