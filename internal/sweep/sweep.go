// Package sweep implements the optimized plane-sweep machinery of
// paper §3: selecting a sweeping axis by the "sweeping index" metric
// (Eq. 2, with the closed forms of Table 1 generalized to every node
// configuration), selecting a sweeping direction from the projected
// intervals (§3.3), and the sorting/pruning primitives the node
// expansion loops are built from.
package sweep

import (
	"math"
	"sort"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// Direction is the plane-sweep scan direction along the chosen axis.
type Direction int

const (
	// Forward scans child nodes in increasing coordinate order.
	Forward Direction = iota
	// Backward scans child nodes in decreasing coordinate order.
	Backward
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Plan holds a sweeping decision for one node pair.
type Plan struct {
	Axis int
	Dir  Direction
}

// Choose returns the sweeping plan for expanding the node pair (r, s)
// under the pruning cutoff: the axis minimizing the sweeping index and
// the direction determined by the projected intervals. A non-finite or
// non-positive cutoff degenerates the index, so axis selection falls
// back to the wider combined extent (sweeping the more spread-out
// dimension, the same intuition with no window).
func Choose(r, s geom.Rect, cutoff float64) Plan {
	axis := 0
	if math.IsInf(cutoff, 1) || cutoff <= 0 {
		// Without a meaningful window the index is constant/degenerate;
		// prefer the axis with the larger combined spread, where axis
		// pruning will engage soonest once a cutoff materializes.
		if combinedSpan(r, s, 1) > combinedSpan(r, s, 0) {
			axis = 1
		}
	} else {
		best := math.Inf(1)
		for a := 0; a < geom.Dims; a++ {
			if idx := Index(a, r, s, cutoff); idx < best {
				best = idx
				axis = a
			}
		}
	}
	return Plan{Axis: axis, Dir: ChooseDirection(r, s, axis)}
}

func combinedSpan(r, s geom.Rect, axis int) float64 {
	lo := math.Min(r.Min(axis), s.Min(axis))
	hi := math.Max(r.Max(axis), s.Max(axis))
	return hi - lo
}

// ChooseDirection implements §3.3: project both nodes onto the axis;
// of the three consecutive intervals the projections induce, compare
// the left and the right one. A shorter left interval means the close
// endpoints meet early in a forward scan, so forward is chosen;
// otherwise backward.
func ChooseDirection(r, s geom.Rect, axis int) Direction {
	left := math.Abs(r.Min(axis) - s.Min(axis))
	right := math.Abs(r.Max(axis) - s.Max(axis))
	if left <= right {
		return Forward
	}
	return Backward
}

// Index computes the sweeping index of Eq. 2 for the given axis: a
// normalized estimate of how many child pairs a plane sweep with
// window cutoff must compute real distances for. Smaller is better.
//
// The first term integrates, over window positions t spanning r's
// projection, the fraction of s's extent covered by the window
// [t, t+cutoff]; the second term is symmetric. Both terms reduce to
// closed piecewise-quadratic forms (Table 1 covers the disjoint case);
// integrateWindowOverlap evaluates them exactly for every
// configuration, including overlapping and degenerate (zero-extent)
// projections.
func Index(axis int, r, s geom.Rect, cutoff float64) float64 {
	r0, r1 := r.Min(axis), r.Max(axis)
	s0, s1 := s.Min(axis), s.Max(axis)
	return normalizedTerm(cutoff, r0, r1, s0, s1) + normalizedTerm(cutoff, s0, s1, r0, r1)
}

// normalizedTerm evaluates one integral term of Eq. 2 as the expected
// *fraction* of (a-anchor, b-candidate) child pairs whose axis distance
// falls within the window: the window slides with its left endpoint
// over [a0, a1] and the overlap with [b0, b1] is accumulated,
// normalized by both side lengths (anchors are spread with density
// 1/|a| along a's projection, candidates with density 1/|b|). The
// per-unit-anchor normalization is implicit in Eq. 2's prose — without
// it the index would scale with |a| and rank axes incorrectly.
//
// When b is degenerate the overlap fraction is the 0/1 indicator of
// hitting the point; when a is degenerate the integral collapses to
// the single window position.
func normalizedTerm(d, a0, a1, b0, b1 float64) float64 {
	if d <= 0 {
		return 0
	}
	alen := a1 - a0
	blen := b1 - b0
	if alen == 0 {
		// Single window position [a0, a0+d].
		if blen == 0 {
			if a0 <= b0 && b0 <= a0+d {
				return 1
			}
			return 0
		}
		return overlapLen(a0, a0+d, b0, b1) / blen
	}
	if blen == 0 {
		// Indicator integral: measure of {u in [a0,a1] : u <= b0 <= u+d},
		// i.e. the length of [b0-d, b0] clipped to [a0, a1].
		return overlapLen(a0, a1, b0-d, b0) / alen
	}
	return integrateWindowOverlap(d, a0, a1, b0, b1) / (alen * blen)
}

// overlapLen returns the length of [x0,x1] ∩ [y0,y1], or 0.
func overlapLen(x0, x1, y0, y1 float64) float64 {
	lo := math.Max(x0, y0)
	hi := math.Min(x1, y1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// integrateWindowOverlap computes
//
//	∫_{a0}^{a1} len([u, u+d] ∩ [b0, b1]) du
//
// exactly. The integrand f(u) = max(0, min(u+d, b1) - max(u, b0)) is
// continuous and piecewise linear with breakpoints at b0-d, b1-d, b0,
// and b1, so integrating each linear piece with the trapezoid rule is
// exact. These are the closed forms of Table 1, generalized.
func integrateWindowOverlap(d, a0, a1, b0, b1 float64) float64 {
	f := func(u float64) float64 {
		v := math.Min(u+d, b1) - math.Max(u, b0)
		if v < 0 {
			return 0
		}
		return v
	}
	breaks := []float64{a0, a1, b0 - d, b1 - d, b0, b1}
	sort.Float64s(breaks)
	var total float64
	for i := 0; i < len(breaks)-1; i++ {
		lo := math.Max(breaks[i], a0)
		hi := math.Min(breaks[i+1], a1)
		if hi <= lo {
			continue
		}
		total += (f(lo) + f(hi)) / 2 * (hi - lo)
	}
	return total
}

// Key returns the sort key of a rectangle for a sweep along axis in
// the given direction: the lower corner ascending for forward sweeps,
// the negated upper corner (so that larger coordinates come first) for
// backward sweeps.
func Key(r geom.Rect, axis int, dir Direction) float64 {
	if dir == Forward {
		return r.Min(axis)
	}
	return -r.Max(axis)
}

// SortEntries sorts entries in sweep order for the given plan.
func SortEntries(entries []rtree.NodeEntry, p Plan) {
	sort.Slice(entries, func(i, j int) bool {
		return Key(entries[i].Rect, p.Axis, p.Dir) < Key(entries[j].Rect, p.Axis, p.Dir)
	})
}

// AxisGap returns the axis distance between the anchor and a candidate
// encountered later in sweep order. Because the anchor holds the
// minimum sweep key, the gap is monotone nondecreasing along the
// candidate list, which is what makes the early break of the sweep
// pruning loop safe (SweepPruning line 16 of Algorithm 1).
func AxisGap(anchor, other geom.Rect, axis int, dir Direction) float64 {
	var g float64
	if dir == Forward {
		g = other.Min(axis) - anchor.Max(axis)
	} else {
		g = anchor.Min(axis) - other.Max(axis)
	}
	if g < 0 {
		return 0
	}
	return g
}
