package sweep

import (
	"math"
	"testing"

	"distjoin/internal/geom"
)

// FuzzIndex checks the sweeping-index closed forms over arbitrary
// rectangle configurations: finite, nonnegative, and bounded by 2
// (each term is a pair fraction).
func FuzzIndex(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5)
	f.Fuzz(func(t *testing.T, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2, d float64) {
		for _, v := range []float64{ax1, ay1, ax2, ay2, bx1, by1, bx2, by2, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		r := geom.NewRect(ax1, ay1, ax2, ay2)
		s := geom.NewRect(bx1, by1, bx2, by2)
		if d < 0 {
			d = -d
		}
		for axis := 0; axis < geom.Dims; axis++ {
			idx := Index(axis, r, s, d)
			if math.IsNaN(idx) || idx < -1e-9 || idx > 2+1e-9 {
				t.Fatalf("index out of range: %g (axis %d, r=%v s=%v d=%g)", idx, axis, r, s, d)
			}
		}
	})
}
