package sweep

import (
	"sort"

	"distjoin/internal/rtree"
)

// soaOrder adapts a NodeSoA to sort.Interface for one sweep plan. The
// key column aliases the node's own coordinate slice for the plan's
// axis, so Less reads contiguous float64 memory and Swap permutes all
// columns in lockstep.
type soaOrder struct {
	s        *rtree.NodeSoA
	key      []float64
	backward bool
}

func (o *soaOrder) Len() int { return o.s.Len() }

func (o *soaOrder) Less(i, j int) bool {
	// Forward sweeps order by Min(axis) ascending; backward sweeps by
	// -Max(axis) ascending, exactly Key's values. Comparing the negated
	// keys directly (rather than key[j] < key[i]) keeps the NaN
	// semantics bit-for-bit those of SortEntries.
	if o.backward {
		return -o.key[i] < -o.key[j]
	}
	return o.key[i] < o.key[j]
}

func (o *soaOrder) Swap(i, j int) { o.s.Swap(i, j) }

// SoASorter sorts NodeSoA nodes into sweep order. The zero value is
// ready; keeping one per goroutine amortizes the sort.Interface
// adapter so repeated sorts allocate nothing.
type SoASorter struct {
	o soaOrder
}

// Sort permutes s into sweep order for plan p. The permutation is
// identical to SortEntries on the equivalent entry slice: both run the
// standard library's pdqsort over the same length and the same
// less-relation, so equal-key runs land in the same order — which is
// what keeps SoA sweeps byte-identical to the entry-slice engine they
// replaced.
func (ss *SoASorter) Sort(s *rtree.NodeSoA, p Plan) {
	ss.o = soaOrder{s: s, key: s.Lo(p.Axis), backward: p.Dir == Backward}
	if ss.o.backward {
		ss.o.key = s.Hi(p.Axis)
	}
	sort.Sort(&ss.o)
	ss.o = soaOrder{} // drop the aliases so the node isn't pinned
}

// SortSoA sorts s in sweep order for the given plan.
func SortSoA(s *rtree.NodeSoA, p Plan) {
	var ss SoASorter
	ss.Sort(s, p)
}
