package sweep

import (
	"math"
	"math/rand"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// fillSoA copies entries into a NodeSoA.
func fillSoA(s *rtree.NodeSoA, entries []rtree.NodeEntry) {
	s.Reset(len(entries))
	s.Level = 0
	for i, e := range entries {
		s.MinX[i], s.MinY[i] = e.Rect.MinX, e.Rect.MinY
		s.MaxX[i], s.MaxY[i] = e.Rect.MaxX, e.Rect.MaxY
		s.Refs[i] = e.Ref
	}
}

// TestSortSoAMatchesSortEntries pins the permutation identity the SoA
// engine rests on: SortSoA and SortEntries must order the same node
// identically — duplicate keys included — because both run the
// standard library's pdqsort over the same length and less-relation.
// Refs are unique per entry, so comparing the ref sequence verifies
// the exact permutation, not just a valid sort.
func TestSortSoAMatchesSortEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var soa rtree.NodeSoA
	var sorter SoASorter
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		entries := make([]rtree.NodeEntry, n)
		for i := range entries {
			// Draw coordinates from a coarse grid so duplicate sweep keys
			// are common: equal-key runs are where a stability or
			// less-relation mismatch would show.
			x := float64(rng.Intn(8))
			y := float64(rng.Intn(8))
			entries[i] = rtree.NodeEntry{
				Rect: geom.NewRect(x, y, x+float64(rng.Intn(3)), y+float64(rng.Intn(3))),
				Ref:  uint64(i),
			}
		}
		for axis := 0; axis < geom.Dims; axis++ {
			for _, dir := range []Direction{Forward, Backward} {
				p := Plan{Axis: axis, Dir: dir}
				ref := append([]rtree.NodeEntry(nil), entries...)
				SortEntries(ref, p)
				fillSoA(&soa, entries)
				sorter.Sort(&soa, p)
				for i := range ref {
					if soa.Refs[i] != ref[i].Ref {
						t.Fatalf("trial %d plan %+v: permutation diverges at %d: SoA ref %d, entries ref %d",
							trial, p, i, soa.Refs[i], ref[i].Ref)
					}
					if soa.Entry(i) != ref[i] {
						t.Fatalf("trial %d plan %+v: entry %d columns out of lockstep", trial, p, i)
					}
				}
			}
		}
	}
}

// TestSortSoANaNKeys pins that NaN sweep keys order identically in
// both paths (the soaOrder.Less negation trick exists exactly for
// this: -NaN comparisons are as false as NaN ones, matching Key's
// behavior bit-for-bit).
func TestSortSoANaNKeys(t *testing.T) {
	nan := math.NaN()
	entries := []rtree.NodeEntry{
		{Rect: geom.Rect{MinX: 3, MinY: 0, MaxX: 4, MaxY: 1}, Ref: 0},
		{Rect: geom.Rect{MinX: nan, MinY: nan, MaxX: nan, MaxY: nan}, Ref: 1},
		{Rect: geom.Rect{MinX: 1, MinY: 2, MaxX: 2, MaxY: 3}, Ref: 2},
		{Rect: geom.Rect{MinX: nan, MinY: 5, MaxX: nan, MaxY: 6}, Ref: 3},
		{Rect: geom.Rect{MinX: 2, MinY: 1, MaxX: 3, MaxY: 2}, Ref: 4},
	}
	var soa rtree.NodeSoA
	for axis := 0; axis < geom.Dims; axis++ {
		for _, dir := range []Direction{Forward, Backward} {
			p := Plan{Axis: axis, Dir: dir}
			ref := append([]rtree.NodeEntry(nil), entries...)
			SortEntries(ref, p)
			fillSoA(&soa, entries)
			SortSoA(&soa, p)
			for i := range ref {
				if soa.Refs[i] != ref[i].Ref {
					t.Fatalf("plan %+v: NaN permutation diverges at %d: SoA ref %d, entries ref %d",
						p, i, soa.Refs[i], ref[i].Ref)
				}
			}
		}
	}
}

// TestSoASorterReuseNoAllocs pins the amortization contract: a warm
// SoASorter sorts without allocating.
func TestSoASorterReuseNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := make([]rtree.NodeEntry, 40)
	for i := range entries {
		x, y := rng.Float64()*10, rng.Float64()*10
		entries[i] = rtree.NodeEntry{Rect: geom.NewRect(x, y, x+1, y+1), Ref: uint64(i)}
	}
	var soa rtree.NodeSoA
	var sorter SoASorter
	fillSoA(&soa, entries)
	sorter.Sort(&soa, Plan{Axis: 0, Dir: Forward})
	if avg := testing.AllocsPerRun(100, func() {
		fillSoA(&soa, entries)
		sorter.Sort(&soa, Plan{Axis: 1, Dir: Backward})
	}); avg != 0 {
		t.Errorf("warm SoASorter allocates %v per sort, want 0", avg)
	}
}
