package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	ps := s.PageSize()
	if s.NumPages() != 0 {
		t.Fatalf("fresh store has %d pages", s.NumPages())
	}
	id0, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d, want 0,1", id0, id1)
	}
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s.NumPages())
	}

	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.WritePage(id1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ps)
	if err := s.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read-back mismatch")
	}
	// Fresh page is zeroed.
	if err := s.ReadPage(id0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("alloc'd page not zeroed")
		}
	}

	// Error cases.
	if err := s.ReadPage(99, got); err == nil {
		t.Fatal("out-of-range read must fail")
	}
	if err := s.WritePage(99, buf); err == nil {
		t.Fatal("out-of-range write must fail")
	}
	if err := s.ReadPage(id0, make([]byte, ps-1)); !errors.Is(err, ErrBadPageSize) {
		t.Fatalf("short buffer read: %v", err)
	}
	if err := s.WritePage(id0, make([]byte, ps+1)); !errors.Is(err, ErrBadPageSize) {
		t.Fatalf("long buffer write: %v", err)
	}

	st := s.Stats()
	if st.Allocs != 2 || st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
	if err := s.ReadPage(id0, got); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestMemStore(t *testing.T) {
	testStoreBasics(t, NewMemStore(512))
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	testStoreBasics(t, s)
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 256)
	if err := s.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d, want 1", s2.NumPages())
	}
	got := make([]byte, 256)
	if err := s2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("reopened page mismatch")
	}
}

func TestOpenFileStoreBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenFileStore(path, 256); err == nil {
		t.Fatal("opening with mismatched page size must fail")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing"), 256); err == nil {
		t.Fatal("opening missing file must fail")
	}
}

func TestDefaultPageSizeApplied(t *testing.T) {
	s := NewMemStore(0)
	if s.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d, want %d", s.PageSize(), DefaultPageSize)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	s := NewMemStore(128)
	p := NewBufferPool(s, 2*128) // two frames
	ids := make([]PageID, 3)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		buf := bytes.Repeat([]byte{byte(i + 1)}, 128)
		if err := s.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}

	if _, hit, err := p.Get(ids[0]); err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := p.Get(ids[0]); err != nil || !hit {
		t.Fatalf("second get must hit: hit=%v err=%v", hit, err)
	}
	if _, _, err := p.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	// Pool is full (0,1). Getting 2 evicts LRU = 0.
	if _, _, err := p.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := p.Get(ids[0]); err != nil || hit {
		t.Fatalf("page 0 should have been evicted; hit=%v err=%v", hit, err)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	s := NewMemStore(64)
	p := NewBufferPool(s, 64) // one frame
	id0, _ := s.Alloc()
	id1, _ := s.Alloc()

	data := bytes.Repeat([]byte{0x5A}, 64)
	if err := p.Put(id0, data); err != nil {
		t.Fatal(err)
	}
	// Force eviction of dirty frame 0 by touching page 1.
	if _, _, err := p.Get(id1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := s.ReadPage(id0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("dirty frame was not written back on eviction")
	}
}

func TestBufferPoolFlushAndInvalidate(t *testing.T) {
	s := NewMemStore(64)
	p := NewBufferPool(s, 4*64)
	id, _ := s.Alloc()
	data := bytes.Repeat([]byte{7}, 64)
	if err := p.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := s.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("flush did not persist dirty frame")
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := p.Get(id); hit {
		t.Fatal("invalidate must drop cached frames")
	}
}

func TestBufferPoolPutUpdatesCachedFrame(t *testing.T) {
	s := NewMemStore(64)
	p := NewBufferPool(s, 4*64)
	id, _ := s.Alloc()
	if _, _, err := p.Get(id); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{9}, 64)
	if err := p.Put(id, data); err != nil {
		t.Fatal(err)
	}
	got, hit, err := p.Get(id)
	if err != nil || !hit {
		t.Fatalf("get after put: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("put did not update cached frame")
	}
	if err := p.Put(id, make([]byte, 63)); !errors.Is(err, ErrBadPageSize) {
		t.Fatalf("bad size put: %v", err)
	}
}

func TestBufferPoolMinimumOneFrame(t *testing.T) {
	s := NewMemStore(4096)
	p := NewBufferPool(s, 10) // less than one page
	if p.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", p.Frames())
	}
	if p.PageSize() != 4096 || p.Store() != Store(s) {
		t.Fatal("accessors mismatch")
	}
}

// Property: random reads through the pool always return the same bytes
// as direct store reads, across many interleaved puts/gets.
func TestBufferPoolConsistencyProperty(t *testing.T) {
	const pageSize = 128
	s := NewMemStore(pageSize)
	p := NewBufferPool(s, 3*pageSize)
	rng := rand.New(rand.NewSource(99))

	shadow := make(map[PageID][]byte)
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		shadow[id] = make([]byte, pageSize)
	}
	for op := 0; op < 2000; op++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			data := make([]byte, pageSize)
			rng.Read(data)
			if err := p.Put(id, data); err != nil {
				t.Fatal(err)
			}
			copy(shadow[id], data)
		} else {
			got, _, err := p.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[id]) {
				t.Fatalf("op %d: page %d content diverged", op, id)
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	for id, want := range shadow {
		if err := s.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("store page %d diverged after flush", id)
		}
	}
}

func TestResetStats(t *testing.T) {
	s := NewMemStore(64)
	p := NewBufferPool(s, 64)
	id, _ := s.Alloc()
	if _, _, err := p.Get(id); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if st := p.Stats(); st != (BufferStats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}
