package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the default failure returned by a FaultStore.
var ErrInjected = errors.New("storage: injected fault")

// FaultStore wraps a Store and injects a failure after a configurable
// number of operations. It exists for failure-injection testing: the
// join algorithms, queue, and sorter must surface storage errors
// cleanly instead of looping, panicking, or silently truncating
// results.
type FaultStore struct {
	mu        sync.Mutex
	inner     Store
	remaining int   // operations until failure; < 0 disables
	err       error // error to inject
}

// NewFaultStore wraps inner so that the (failAfter+1)-th subsequent
// operation — and every operation after it — fails with ErrInjected.
// A negative failAfter never fails.
func NewFaultStore(inner Store, failAfter int) *FaultStore {
	return &FaultStore{inner: inner, remaining: failAfter, err: ErrInjected}
}

// SetError replaces the injected error.
func (s *FaultStore) SetError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

// Disarm disables fault injection (in-flight behavior becomes
// pass-through).
func (s *FaultStore) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remaining = -1
}

// Arm (re)sets the store to fail after n more operations. A negative n
// disarms.
func (s *FaultStore) Arm(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remaining = n
}

// tick consumes one operation and reports whether it must fail.
func (s *FaultStore) tick() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.remaining < 0 {
		return nil
	}
	if s.remaining == 0 {
		return s.err
	}
	s.remaining--
	return nil
}

// PageSize implements Store.
func (s *FaultStore) PageSize() int { return s.inner.PageSize() }

// NumPages implements Store.
func (s *FaultStore) NumPages() int { return s.inner.NumPages() }

// Alloc implements Store.
func (s *FaultStore) Alloc() (PageID, error) {
	if err := s.tick(); err != nil {
		return InvalidPage, err
	}
	return s.inner.Alloc()
}

// ReadPage implements Store.
func (s *FaultStore) ReadPage(id PageID, buf []byte) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (s *FaultStore) WritePage(id PageID, buf []byte) error {
	if err := s.tick(); err != nil {
		return err
	}
	return s.inner.WritePage(id, buf)
}

// Stats implements Store.
func (s *FaultStore) Stats() StoreStats { return s.inner.Stats() }

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }
