package storage

import (
	"errors"
	"testing"
)

func TestFaultStorePassThroughAndFailure(t *testing.T) {
	inner := NewMemStore(128)
	fs := NewFaultStore(inner, 3)
	if fs.PageSize() != 128 {
		t.Fatalf("PageSize = %d", fs.PageSize())
	}
	id, err := fs.Alloc() // op 1
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := fs.WritePage(id, buf); err != nil { // op 2
		t.Fatal(err)
	}
	if err := fs.ReadPage(id, buf); err != nil { // op 3
		t.Fatal(err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) { // op 4: fails
		t.Fatalf("expected injected fault, got %v", err)
	}
	// Every subsequent operation keeps failing.
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatal("alloc should fail after trigger")
	}
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("write should fail after trigger")
	}
	if fs.NumPages() != 1 {
		t.Fatalf("NumPages = %d", fs.NumPages())
	}
	if fs.Stats().Allocs != 1 {
		t.Fatalf("stats = %+v", fs.Stats())
	}
}

func TestFaultStoreDisarmAndRearm(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64), 0)
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatal("armed-at-zero store must fail immediately")
	}
	fs.Disarm()
	id, err := fs.Alloc()
	if err != nil {
		t.Fatalf("disarmed store failed: %v", err)
	}
	fs.Arm(1)
	buf := make([]byte, 64)
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("re-armed store must fail on second op")
	}
}

func TestFaultStoreCustomError(t *testing.T) {
	custom := errors.New("boom")
	fs := NewFaultStore(NewMemStore(64), 0)
	fs.SetError(custom)
	if _, err := fs.Alloc(); !errors.Is(err, custom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestFaultStoreNegativeNeverFails(t *testing.T) {
	fs := NewFaultStore(NewMemStore(64), -1)
	buf := make([]byte, 64)
	for i := 0; i < 100; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}
