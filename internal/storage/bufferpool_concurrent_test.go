package storage

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestBufferPoolConcurrentReads hammers a small shared pool from many
// goroutines with a working set far larger than the frame capacity, so
// every goroutine constantly evicts frames other goroutines just
// fetched. This is the parallel join engine's access pattern (read-only
// R-tree pages through a shared pool) and must be race-free with every
// returned page intact. Run under -race for full value.
func TestBufferPoolConcurrentReads(t *testing.T) {
	const (
		pageSize = 512
		pages    = 64
		workers  = 8
		rounds   = 400
	)
	store := NewMemStore(pageSize)
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := store.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, pageSize)
		for off := 0; off < pageSize; off += 8 {
			binary.LittleEndian.PutUint64(buf[off:], uint64(id)^uint64(off))
		}
		if err := store.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// 4 frames: heavy eviction churn.
	pool := NewBufferPool(store, 4*pageSize)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := ids[(seed*31+r*17)%pages]
				data, _, err := pool.Get(id)
				if err != nil {
					errs <- err
					return
				}
				for off := 0; off < pageSize; off += 8 {
					if got := binary.LittleEndian.Uint64(data[off:]); got != uint64(id)^uint64(off) {
						t.Errorf("page %d corrupted at offset %d: %x", id, off, got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Hits+st.Misses != int64(workers*rounds) {
		t.Fatalf("stats lost accesses: hits=%d misses=%d want total %d", st.Hits, st.Misses, workers*rounds)
	}
}
