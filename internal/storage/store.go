// Package storage provides the paged storage substrate shared by the
// R-tree, the hybrid memory/disk queue, and the external sorter: a page
// store abstraction with memory- and file-backed implementations, and
// an LRU buffer pool with hit/miss accounting.
//
// The page size defaults to 4 KB, matching the paper's experimental
// settings (§5.1), and all I/O statistics needed to reproduce Table 2
// and the response-time figures are collected here.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultPageSize is the page size used throughout the paper's
// experiments.
const DefaultPageSize = 4096

// PageID identifies a page within a Store. Valid IDs start at 0.
type PageID uint32

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(^uint32(0))

// Common storage errors.
var (
	ErrPageOutOfRange = errors.New("storage: page id out of range")
	ErrBadPageSize    = errors.New("storage: buffer size does not match page size")
	ErrClosed         = errors.New("storage: store is closed")
)

// Store is a flat array of fixed-size pages. Implementations must be
// safe for concurrent use.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Alloc appends a zeroed page and returns its ID.
	Alloc() (PageID, error)
	// ReadPage copies page id into buf, which must be PageSize() long.
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf, which must be PageSize() long, into page id.
	WritePage(id PageID, buf []byte) error
	// Stats returns cumulative physical I/O counts.
	Stats() StoreStats
	// Close releases resources. Further operations fail with ErrClosed.
	Close() error
}

// StoreStats counts physical page operations against a Store.
type StoreStats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// MemStore is an in-memory Store. It is the default backing for
// simulated experiments: physically "on disk" pages are still counted
// (so I/O cost models apply) without touching the file system.
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	stats    StoreStats
	closed   bool
}

// NewMemStore returns an empty in-memory store with the given page
// size (DefaultPageSize if pageSize <= 0).
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{pageSize: pageSize}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Alloc implements Store.
func (s *MemStore) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	s.pages = append(s.pages, make([]byte, s.pageSize))
	s.stats.Allocs++
	return PageID(len(s.pages) - 1), nil
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return ErrBadPageSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, len(s.pages))
	}
	copy(buf, s.pages[id])
	s.stats.Reads++
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return ErrBadPageSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, len(s.pages))
	}
	copy(s.pages[id], buf)
	s.stats.Writes++
	return nil
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.pages = nil
	return nil
}

// FileStore is a Store backed by a single OS file, for durable R-tree
// indexes built by cmd/distjoin-gen.
type FileStore struct {
	mu       sync.Mutex
	pageSize int
	f        *os.File
	numPages int
	stats    StoreStats
	closed   bool
}

// CreateFileStore creates (truncating) a file-backed store at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &FileStore{pageSize: pageSize, f: f}, nil
}

// OpenFileStore opens an existing file-backed store at path. The file
// length must be a multiple of pageSize.
func OpenFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not a multiple of page size %d",
			path, fi.Size(), pageSize)
	}
	return &FileStore{
		pageSize: pageSize,
		f:        f,
		numPages: int(fi.Size() / int64(pageSize)),
	}, nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numPages
}

// Alloc implements Store.
func (s *FileStore) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	id := PageID(s.numPages)
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*int64(s.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("storage: alloc page %d: %w", id, err)
	}
	s.numPages++
	s.stats.Allocs++
	return id, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return ErrBadPageSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, s.numPages)
	}
	if _, err := s.f.ReadAt(buf, int64(id)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	s.stats.Reads++
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != s.pageSize {
		return ErrBadPageSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if int(id) >= s.numPages {
		return fmt.Errorf("%w: %d >= %d", ErrPageOutOfRange, id, s.numPages)
	}
	if _, err := s.f.WriteAt(buf, int64(id)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	s.stats.Writes++
	return nil
}

// Stats implements Store.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
