package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches pages of a Store under an LRU replacement policy.
// Its capacity is specified in bytes (the paper varies the R-tree
// buffer from 64 KB to 1024 KB in Figure 13) and converted into whole
// page frames.
//
// The pool is write-back: dirty frames are flushed when evicted or on
// Flush. Get reports whether the access was a buffer hit, so callers
// can attribute logical vs physical node accesses (Table 2).
//
// Concurrency: all operations are serialized on an internal mutex, so
// the pool may be shared by multiple goroutines. For read-only
// workloads (Get without Put — how the join algorithms use R-tree
// pools, including parallel expansion workers) the slices Get returns
// stay valid and immutable even across later pool operations: frame
// contents are only ever rewritten by Put, and eviction merely drops
// the pool's reference. Mixed Get/Put use from multiple goroutines
// must instead copy under the caller's own coordination, per Get's
// aliasing contract.
type BufferPool struct {
	mu     sync.Mutex
	store  Store
	frames int
	table  map[PageID]*list.Element
	lru    *list.List // front = most recently used
	stats  BufferStats
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// BufferStats counts buffer pool activity.
type BufferStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Flushes   int64
}

// NewBufferPool returns a pool over store holding at most capacityBytes
// of pages (minimum one frame).
func NewBufferPool(store Store, capacityBytes int) *BufferPool {
	frames := capacityBytes / store.PageSize()
	if frames < 1 {
		frames = 1
	}
	return &BufferPool{
		store:  store,
		frames: frames,
		table:  make(map[PageID]*list.Element, frames),
		lru:    list.New(),
	}
}

// Frames returns the pool capacity in page frames.
func (p *BufferPool) Frames() int { return p.frames }

// PageSize returns the underlying store's page size.
func (p *BufferPool) PageSize() int { return p.store.PageSize() }

// Store returns the underlying store.
func (p *BufferPool) Store() Store { return p.store }

// Get returns the contents of page id and whether it was a buffer hit.
// The returned slice aliases the cached frame and is valid until the
// next pool operation; callers that retain data must copy it.
func (p *BufferPool) Get(id PageID) (data []byte, hit bool, err error) {
	data, acc, err := p.GetAccounted(id)
	return data, acc.Hit, err
}

// Access describes one buffer pool access for per-query attribution:
// whether it hit, and how many frames the access evicted (always zero
// on a hit). Aggregate pool statistics remain available via Stats;
// Access lets a query charge its own share to a metrics.Collector
// shard without sharing mutable counters across goroutines.
type Access struct {
	Hit       bool
	Evictions int64
}

// GetAccounted is Get with per-access attribution: the returned
// Access reports the hit/miss outcome and the evictions this access
// caused. The data aliasing contract is the same as Get's.
func (p *BufferPool) GetAccounted(id PageID) (data []byte, acc Access, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.table[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		return el.Value.(*frame).data, Access{Hit: true}, nil
	}
	p.stats.Misses++
	buf := make([]byte, p.store.PageSize())
	if err := p.store.ReadPage(id, buf); err != nil {
		return nil, Access{}, err
	}
	evicted, err := p.insertLocked(&frame{id: id, data: buf})
	if err != nil {
		return nil, Access{}, err
	}
	return buf, Access{Evictions: evicted}, nil
}

// Put installs data as the contents of page id and marks it dirty. The
// data is copied into the frame.
func (p *BufferPool) Put(id PageID, data []byte) error {
	if len(data) != p.store.PageSize() {
		return ErrBadPageSize
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.table[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		f.dirty = true
		p.lru.MoveToFront(el)
		return nil
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	_, err := p.insertLocked(&frame{id: id, data: buf, dirty: true})
	return err
}

// insertLocked adds f to the pool, evicting LRU frames if full, and
// returns how many frames were evicted.
func (p *BufferPool) insertLocked(f *frame) (evicted int64, err error) {
	for p.lru.Len() >= p.frames {
		back := p.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*frame)
		if victim.dirty {
			if err := p.store.WritePage(victim.id, victim.data); err != nil {
				return evicted, fmt.Errorf("storage: evict page %d: %w", victim.id, err)
			}
			p.stats.Flushes++
		}
		p.lru.Remove(back)
		delete(p.table, victim.id)
		p.stats.Evictions++
		evicted++
	}
	p.table[f.id] = p.lru.PushFront(f)
	return evicted, nil
}

// Flush writes all dirty frames back to the store without evicting.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if !f.dirty {
			continue
		}
		if err := p.store.WritePage(f.id, f.data); err != nil {
			return fmt.Errorf("storage: flush page %d: %w", f.id, err)
		}
		f.dirty = false
		p.stats.Flushes++
	}
	return nil
}

// Invalidate drops every cached frame after flushing dirty ones; used
// between experiment runs to cold-start the cache.
func (p *BufferPool) Invalidate() error {
	if err := p.Flush(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.table = make(map[PageID]*list.Element, p.frames)
	p.lru.Init()
	return nil
}

// Stats returns cumulative pool statistics.
func (p *BufferPool) Stats() BufferStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the pool statistics (the cache contents remain).
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = BufferStats{}
}
