// Package pqueue implements the binary-heap priority queues used by
// the distance join algorithms: a generic heap, and the bounded
// max-heap "distance queue" of paper §2.1 that maintains the k smallest
// object-pair distances seen so far and exposes their maximum as the
// pruning cutoff qDmax.
package pqueue

import "math"

// Heap is a binary heap ordered by the less function supplied at
// construction (a min-heap when less is "a < b").
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewHeapFromSlice heapifies items in place (O(n)) and returns a heap
// that owns the slice.
func NewHeapFromSlice[T any](items []T, less func(a, b T) bool) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push adds v to the heap.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.siftUp(len(h.items) - 1)
}

// Peek returns the top element without removing it. It panics on an
// empty heap, mirroring slice indexing semantics.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Pop removes and returns the top element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references for GC
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

// ReplaceTop pops the top and pushes v in one O(log n) operation.
func (h *Heap[T]) ReplaceTop(v T) T {
	top := h.items[0]
	h.items[0] = v
	h.siftDown(0)
	return top
}

// Clear removes all elements, retaining capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Items exposes the raw heap-ordered backing slice (top at index 0).
// Callers must not reorder it; it is intended for draining or for
// rebuilding via NewHeapFromSlice.
func (h *Heap[T]) Items() []T { return h.items }

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// DistanceQueue is the bounded max-heap of paper §2.1: it retains the k
// smallest distances inserted so far. While fewer than k distances are
// held the cutoff qDmax is +Inf; afterwards it is the k-th smallest
// distance, i.e. the maximum element.
type DistanceQueue struct {
	k    int
	heap *Heap[float64]
}

// NewDistanceQueue returns a distance queue bounded to k distances.
// k must be positive.
func NewDistanceQueue(k int) *DistanceQueue {
	if k <= 0 {
		panic("pqueue: DistanceQueue requires k > 0")
	}
	return &DistanceQueue{
		k:    k,
		heap: NewHeap(func(a, b float64) bool { return a > b }), // max-heap
	}
}

// K returns the bound.
func (q *DistanceQueue) K() int { return q.k }

// Len returns the number of retained distances.
func (q *DistanceQueue) Len() int { return q.heap.Len() }

// Insert offers distance d. It returns true if d was retained (i.e. it
// is among the k smallest seen so far).
func (q *DistanceQueue) Insert(d float64) bool {
	if q.heap.Len() < q.k {
		q.heap.Push(d)
		return true
	}
	if d < q.heap.Peek() {
		q.heap.ReplaceTop(d)
		return true
	}
	return false
}

// Cutoff returns qDmax: +Inf until k distances are held, then the
// current k-th smallest distance.
func (q *DistanceQueue) Cutoff() float64 {
	if q.heap.Len() < q.k {
		return math.Inf(1)
	}
	return q.heap.Peek()
}
