package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapBasics(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("fresh heap must be empty")
	}
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		h.Push(v)
	}
	if h.Len() != 6 {
		t.Fatalf("Len = %d, want 6", h.Len())
	}
	if h.Peek() != 1 {
		t.Fatalf("Peek = %d, want 1", h.Peek())
	}
	want := []int{1, 2, 3, 5, 8, 9}
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !h.Empty() {
		t.Fatal("heap must be empty after draining")
	}
}

func TestHeapPopPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap must panic")
		}
	}()
	NewHeap(func(a, b int) bool { return a < b }).Pop()
}

func TestHeapFromSlice(t *testing.T) {
	items := []int{9, 4, 7, 1, 3, 8, 2}
	h := NewHeapFromSlice(items, func(a, b int) bool { return a < b })
	prev := math.MinInt
	for !h.Empty() {
		v := h.Pop()
		if v < prev {
			t.Fatalf("heap order violated: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestHeapReplaceTop(t *testing.T) {
	h := NewHeapFromSlice([]int{1, 5, 3}, func(a, b int) bool { return a < b })
	if got := h.ReplaceTop(10); got != 1 {
		t.Fatalf("ReplaceTop returned %d, want 1", got)
	}
	if got := h.Pop(); got != 3 {
		t.Fatalf("after replace, pop = %d, want 3", got)
	}
}

func TestHeapClear(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	h.Push(1)
	h.Push(2)
	h.Clear()
	if !h.Empty() {
		t.Fatal("Clear must empty the heap")
	}
	h.Push(7)
	if h.Peek() != 7 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestHeapMaxOrdering(t *testing.T) {
	h := NewHeap(func(a, b float64) bool { return a > b })
	for _, v := range []float64{1, 9, 4, 7} {
		h.Push(v)
	}
	if h.Peek() != 9 {
		t.Fatalf("max-heap Peek = %g, want 9", h.Peek())
	}
}

// Property: popping everything yields a sorted permutation of the input.
func TestHeapSortProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		h := NewHeap(func(a, b float64) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		var got []float64
		for !h.Empty() {
			got = append(got, h.Pop())
		}
		if len(got) != len(vals) {
			return false
		}
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop dequeues match a reference sorted list.
func TestHeapInterleavedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHeap(func(a, b int) bool { return a < b })
	var ref []int
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 || len(ref) == 0 {
			v := rng.Intn(1000)
			h.Push(v)
			ref = append(ref, v)
			sort.Ints(ref)
		} else {
			got := h.Pop()
			if got != ref[0] {
				t.Fatalf("op %d: pop = %d, reference min = %d", op, got, ref[0])
			}
			ref = ref[1:]
		}
	}
}

func TestDistanceQueueCutoff(t *testing.T) {
	q := NewDistanceQueue(3)
	if !math.IsInf(q.Cutoff(), 1) {
		t.Fatal("cutoff must be +Inf before k distances are held")
	}
	q.Insert(5)
	q.Insert(2)
	if !math.IsInf(q.Cutoff(), 1) {
		t.Fatal("cutoff must be +Inf with 2 of 3 held")
	}
	q.Insert(9)
	if q.Cutoff() != 9 {
		t.Fatalf("cutoff = %g, want 9", q.Cutoff())
	}
	if !q.Insert(1) { // displaces 9
		t.Fatal("1 should be retained")
	}
	if q.Cutoff() != 5 {
		t.Fatalf("cutoff = %g, want 5", q.Cutoff())
	}
	if q.Insert(100) {
		t.Fatal("100 exceeds cutoff and must be rejected")
	}
	if q.Len() != 3 || q.K() != 3 {
		t.Fatalf("Len/K = %d/%d", q.Len(), q.K())
	}
}

func TestDistanceQueuePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 must panic")
		}
	}()
	NewDistanceQueue(0)
}

// Property: after n inserts, cutoff equals the k-th smallest of the
// inserted values (or +Inf when n < k).
func TestDistanceQueueKthSmallestProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		n := rng.Intn(100)
		q := NewDistanceQueue(k)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
			q.Insert(vals[i])
		}
		sort.Float64s(vals)
		want := math.Inf(1)
		if n >= k {
			want = vals[k-1]
		}
		if got := q.Cutoff(); got != want {
			t.Fatalf("k=%d n=%d: cutoff = %g, want %g", k, n, got, want)
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap(func(a, b float64) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(rng.Float64())
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

func BenchmarkDistanceQueueInsert(b *testing.B) {
	q := NewDistanceQueue(1000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(rng.Float64())
	}
}
