package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// reference maintains the multiset as a sorted slice.
type refSet struct{ vals []float64 }

func (r *refSet) insert(v float64) {
	i := sort.SearchFloat64s(r.vals, v)
	r.vals = append(r.vals, 0)
	copy(r.vals[i+1:], r.vals[i:])
	r.vals[i] = v
}

func (r *refSet) delete(v float64) {
	i := sort.SearchFloat64s(r.vals, v)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
}

func (r *refSet) kth(k int) float64 {
	if len(r.vals) < k {
		return math.Inf(1)
	}
	return r.vals[k-1]
}

func TestKthTrackerBasic(t *testing.T) {
	tr := NewKthTracker(3)
	if !math.IsInf(tr.Cutoff(), 1) {
		t.Fatal("empty cutoff must be +Inf")
	}
	tr.Insert(5)
	tr.Insert(1)
	if !math.IsInf(tr.Cutoff(), 1) {
		t.Fatal("cutoff must be +Inf with 2 of 3")
	}
	tr.Insert(9)
	if tr.Cutoff() != 9 {
		t.Fatalf("cutoff = %g, want 9", tr.Cutoff())
	}
	tr.Insert(2)
	if tr.Cutoff() != 5 {
		t.Fatalf("cutoff = %g, want 5", tr.Cutoff())
	}
	// Deleting a small value pulls the next one in.
	tr.Delete(1)
	if tr.Cutoff() != 9 {
		t.Fatalf("cutoff after delete = %g, want 9", tr.Cutoff())
	}
	tr.Delete(9)
	if !math.IsInf(tr.Cutoff(), 1) {
		t.Fatalf("cutoff = %g, want +Inf with 2 alive", tr.Cutoff())
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestKthTrackerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 must panic")
		}
	}()
	NewKthTracker(0)
}

func TestKthTrackerDuplicateValues(t *testing.T) {
	tr := NewKthTracker(2)
	for i := 0; i < 5; i++ {
		tr.Insert(7)
	}
	if tr.Cutoff() != 7 {
		t.Fatalf("cutoff = %g", tr.Cutoff())
	}
	tr.Delete(7)
	tr.Delete(7)
	tr.Delete(7)
	if tr.Cutoff() != 7 || tr.Len() != 2 {
		t.Fatalf("cutoff=%g len=%d", tr.Cutoff(), tr.Len())
	}
	tr.Delete(7)
	if !math.IsInf(tr.Cutoff(), 1) {
		t.Fatal("cutoff must be +Inf with 1 alive")
	}
}

// Property: against a reference sorted multiset over random
// insert/delete interleavings, the cutoff always matches.
func TestKthTrackerAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		tr := NewKthTracker(k)
		ref := &refSet{}
		for op := 0; op < 2000; op++ {
			if rng.Intn(3) != 0 || len(ref.vals) == 0 {
				// Small value domain to force many ties.
				v := float64(rng.Intn(20))
				tr.Insert(v)
				ref.insert(v)
			} else {
				v := ref.vals[rng.Intn(len(ref.vals))]
				tr.Delete(v)
				ref.delete(v)
			}
			if got, want := tr.Cutoff(), ref.kth(k); got != want {
				t.Fatalf("trial %d op %d k=%d: cutoff %g, want %g", trial, op, k, got, want)
			}
			if tr.Len() != len(ref.vals) {
				t.Fatalf("trial %d op %d: len %d, want %d", trial, op, tr.Len(), len(ref.vals))
			}
		}
	}
}

func BenchmarkKthTracker(b *testing.B) {
	tr := NewKthTracker(1000)
	rng := rand.New(rand.NewSource(1))
	var live []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := rng.Float64()
		tr.Insert(v)
		live = append(live, v)
		if len(live) > 4096 {
			tr.Delete(live[0])
			live = live[1:]
		}
	}
}
