package pqueue

import "math"

// KthTracker maintains the k-th smallest value of a dynamic multiset
// under insertions and value deletions, using the classic two-heap
// technique with lazy deletion.
//
// It exists for the "all pairs" distance-queue policy: Hjaltason &
// Samet's algorithms prune with the k-th smallest *upper-bound*
// distance over the pairs currently in the main queue, which requires
// removing a node pair's maximum distance when the pair is dequeued
// for expansion — an operation the simple bounded DistanceQueue cannot
// support soundly (a parent's bound and its children's bounds must
// never be counted together).
//
// Deletions are by value: Delete(v) removes one instance of v, which
// must be present (guaranteed by the callers, which only delete values
// they previously inserted).
type KthTracker struct {
	k      int
	lo     *Heap[float64] // max-heap over the k smallest alive values
	hi     *Heap[float64] // min-heap over the rest
	loDel  map[float64]int
	hiDel  map[float64]int
	loSize int // alive values logically in lo
	hiSize int // alive values logically in hi
}

// NewKthTracker returns a tracker for the k-th smallest value. k must
// be positive.
func NewKthTracker(k int) *KthTracker {
	if k <= 0 {
		panic("pqueue: KthTracker requires k > 0")
	}
	return &KthTracker{
		k:     k,
		lo:    NewHeap(func(a, b float64) bool { return a > b }),
		hi:    NewHeap(func(a, b float64) bool { return a < b }),
		loDel: make(map[float64]int),
		hiDel: make(map[float64]int),
	}
}

// Len returns the number of alive values.
func (t *KthTracker) Len() int { return t.loSize + t.hiSize }

// Cutoff returns the k-th smallest alive value, or +Inf while fewer
// than k values are alive.
func (t *KthTracker) Cutoff() float64 {
	if t.loSize < t.k {
		return math.Inf(1)
	}
	return t.loTop()
}

// Insert adds v to the multiset.
func (t *KthTracker) Insert(v float64) {
	if t.loSize < t.k {
		t.lo.Push(v)
		t.loSize++
		t.fixBoundary()
		return
	}
	if v <= t.loTop() {
		t.lo.Push(v)
		t.loSize++
		t.moveLoToHi()
	} else {
		t.hi.Push(v)
		t.hiSize++
	}
}

// Delete removes one instance of v, which must be alive.
func (t *KthTracker) Delete(v float64) {
	if t.loSize > 0 && v <= t.loTop() {
		t.loDel[v]++
		t.loSize--
	} else {
		t.hiDel[v]++
		t.hiSize--
	}
	t.rebalance()
}

// loTop returns the alive maximum of lo, purging dead entries.
func (t *KthTracker) loTop() float64 {
	for !t.lo.Empty() {
		v := t.lo.Peek()
		if n := t.loDel[v]; n > 0 {
			if n == 1 {
				delete(t.loDel, v)
			} else {
				t.loDel[v] = n - 1
			}
			t.lo.Pop()
			continue
		}
		return v
	}
	return math.Inf(-1)
}

// hiTop returns the alive minimum of hi, purging dead entries.
func (t *KthTracker) hiTop() float64 {
	for !t.hi.Empty() {
		v := t.hi.Peek()
		if n := t.hiDel[v]; n > 0 {
			if n == 1 {
				delete(t.hiDel, v)
			} else {
				t.hiDel[v] = n - 1
			}
			t.hi.Pop()
			continue
		}
		return v
	}
	return math.Inf(1)
}

// moveLoToHi moves lo's alive maximum into hi (lo has k+1 alive).
func (t *KthTracker) moveLoToHi() {
	t.loTop() // purge
	v := t.lo.Pop()
	t.hi.Push(v)
	t.loSize--
	t.hiSize++
}

// moveHiToLo moves hi's alive minimum into lo.
func (t *KthTracker) moveHiToLo() {
	t.hiTop() // purge
	v := t.hi.Pop()
	t.lo.Push(v)
	t.hiSize--
	t.loSize++
}

// rebalance refills lo up to k alive values from hi.
func (t *KthTracker) rebalance() {
	for t.loSize < t.k && t.hiSize > 0 {
		t.moveHiToLo()
	}
}

// fixBoundary restores max(lo) <= min(hi) after pushing into a
// non-full lo while hi holds values (possible after deletions).
func (t *KthTracker) fixBoundary() {
	for t.hiSize > 0 && t.loSize > 0 && t.hiTop() < t.loTop() {
		// Swap the violating tops.
		t.loTop()
		lv := t.lo.Pop()
		t.hiTop()
		hv := t.hi.Pop()
		t.lo.Push(hv)
		t.hi.Push(lv)
	}
}
