package metrics

import (
	"testing"
	"time"
)

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Start()
	c.Finish()
	c.Reset()
	c.AddRealDist(1)
	c.AddAxisDist(1)
	c.AddMainQueueInsert(1)
	c.AddDistQueueInsert(1)
	c.AddCompQueueInsert(1)
	c.NodeAccess(true, time.Millisecond)
	c.QueueIO(1, 1, time.Millisecond)
	c.SortIO(1, 1, time.Millisecond)
	c.AddResult(1)
	c.AddCompensationStage()
	c.Add(&Collector{})
	if c.DistCalcs() != 0 || c.QueueInserts() != 0 || c.ResponseTime() != 0 {
		t.Fatal("nil collector must report zeros")
	}
	if s := c.String(); s != "<nil metrics>" {
		t.Fatalf("nil String = %q", s)
	}
}

func TestCounters(t *testing.T) {
	c := &Collector{}
	c.AddRealDist(3)
	c.AddAxisDist(5)
	if c.DistCalcs() != 8 {
		t.Fatalf("DistCalcs = %d, want 8", c.DistCalcs())
	}
	c.AddMainQueueInsert(2)
	c.AddDistQueueInsert(1)
	c.AddCompQueueInsert(4)
	if c.QueueInserts() != 7 {
		t.Fatalf("QueueInserts = %d, want 7", c.QueueInserts())
	}
	c.NodeAccess(false, time.Millisecond)
	c.NodeAccess(true, time.Millisecond)
	if c.NodeAccessesLogical != 2 || c.NodeAccessesPhysical != 1 {
		t.Fatalf("node accesses = %d/%d, want 2/1", c.NodeAccessesLogical, c.NodeAccessesPhysical)
	}
	if c.ModeledIOTime != time.Millisecond {
		t.Fatalf("ModeledIOTime = %v, want 1ms", c.ModeledIOTime)
	}
}

func TestQueueAndSortIO(t *testing.T) {
	c := &Collector{}
	c.QueueIO(2, 3, time.Millisecond)
	c.SortIO(1, 1, 2*time.Millisecond)
	if c.QueuePageReads != 2 || c.QueuePageWrites != 3 {
		t.Fatalf("queue io = %d/%d", c.QueuePageReads, c.QueuePageWrites)
	}
	if c.SortPageReads != 1 || c.SortPageWrites != 1 {
		t.Fatalf("sort io = %d/%d", c.SortPageReads, c.SortPageWrites)
	}
	if want := 5*time.Millisecond + 4*time.Millisecond; c.ModeledIOTime != want {
		t.Fatalf("ModeledIOTime = %v, want %v", c.ModeledIOTime, want)
	}
}

func TestStartFinishWallTime(t *testing.T) {
	c := &Collector{}
	c.Start()
	time.Sleep(5 * time.Millisecond)
	c.Finish()
	if c.WallTime < time.Millisecond {
		t.Fatalf("WallTime = %v, want >= 1ms", c.WallTime)
	}
	if c.ResponseTime() != c.WallTime+c.ModeledIOTime {
		t.Fatal("ResponseTime must be wall + modeled IO")
	}
}

func TestFinishWithoutStart(t *testing.T) {
	c := &Collector{}
	c.Finish()
	if c.WallTime != 0 {
		t.Fatalf("WallTime = %v, want 0 when Start never called", c.WallTime)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := &Collector{RealDistCalcs: 1, MainQueueInserts: 2, ModeledIOTime: time.Second}
	b := &Collector{RealDistCalcs: 10, MainQueueInserts: 20, ModeledIOTime: time.Second,
		CompensationStages: 1, ResultsProduced: 5}
	a.Add(b)
	if a.RealDistCalcs != 11 || a.MainQueueInserts != 22 {
		t.Fatalf("Add mismatch: %+v", a)
	}
	if a.ModeledIOTime != 2*time.Second {
		t.Fatalf("ModeledIOTime = %v", a.ModeledIOTime)
	}
	if a.CompensationStages != 1 || a.ResultsProduced != 5 {
		t.Fatalf("Add mismatch: %+v", a)
	}
}

func TestReset(t *testing.T) {
	c := &Collector{RealDistCalcs: 5}
	c.Reset()
	if c.RealDistCalcs != 0 {
		t.Fatal("Reset must zero counters")
	}
}

func TestIOCostModel(t *testing.T) {
	m := DefaultIOCostModel()
	// 4096 bytes at 512 KB/s = 7.8125 ms per random page.
	if got, want := m.RandomPageCost(), time.Duration(7.8125*float64(time.Millisecond)); got != want {
		t.Fatalf("RandomPageCost = %v, want %v", got, want)
	}
	// 4096 bytes at 5 MB/s = 0.78125 ms per sequential page.
	if got, want := m.SequentialPageCost(), time.Duration(0.78125*float64(time.Millisecond)); got != want {
		t.Fatalf("SequentialPageCost = %v, want %v", got, want)
	}
	zero := IOCostModel{PageSize: 4096}
	if zero.RandomPageCost() != 0 || zero.SequentialPageCost() != 0 {
		t.Fatal("zero-bandwidth model must charge nothing")
	}
}

func TestString(t *testing.T) {
	c := &Collector{RealDistCalcs: 1, AxisDistCalcs: 2}
	if s := c.String(); s == "" {
		t.Fatal("String must be non-empty")
	}
}
