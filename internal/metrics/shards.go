package metrics

// Shards is a set of per-worker Collectors backing a parallel query
// run. The Collector's counters are plain int64 fields — cheap to
// bump on the hot path but unsafe to mutate concurrently — so a
// parallel execution hands each worker goroutine its own shard and
// folds the shards into the query's collector at a synchronization
// point (MergeInto). Shard(i) must only be mutated by worker i, and
// MergeInto must only run while no worker is active; both invariants
// are established by the caller's barriers, which also provide the
// happens-before edges that make the plain field accesses race-free.
type Shards struct {
	shards []Collector
}

// NewShards returns n zeroed shard collectors (n >= 1).
func NewShards(n int) *Shards {
	if n < 1 {
		n = 1
	}
	return &Shards{shards: make([]Collector, n)}
}

// Len returns the number of shards.
func (s *Shards) Len() int {
	if s == nil {
		return 0
	}
	return len(s.shards)
}

// Shard returns the i-th shard collector. The returned pointer is
// stable for the lifetime of the Shards.
func (s *Shards) Shard(i int) *Collector { return &s.shards[i] }

// MergeInto folds every shard's counters into dst (which may be nil)
// and resets the shards for reuse in the next parallel phase. Shards
// never Start/Finish, so no wall time is transferred.
func (s *Shards) MergeInto(dst *Collector) {
	if s == nil {
		return
	}
	for i := range s.shards {
		if (&s.shards[i]).isZero() {
			continue
		}
		dst.Add(&s.shards[i])
		s.shards[i].Reset()
	}
}

// isZero reports whether no counter has been touched, letting
// MergeInto skip idle workers' shards.
func (c *Collector) isZero() bool {
	return c.RealDistCalcs == 0 && c.AxisDistCalcs == 0 &&
		c.RefinementCalcs == 0 && c.MainQueueInserts == 0 &&
		c.DistQueueInserts == 0 && c.CompQueueInserts == 0 &&
		c.NodeAccessesLogical == 0 && c.NodeAccessesPhysical == 0 &&
		c.QueuePageReads == 0 && c.QueuePageWrites == 0 &&
		c.SortPageReads == 0 && c.SortPageWrites == 0 &&
		c.MainQueuePeak == 0 && c.ResultsProduced == 0 &&
		c.CompensationStages == 0 &&
		c.BufferHits == 0 && c.BufferMisses == 0 &&
		c.BufferEvictions == 0 &&
		c.ModeledIOTime == 0 && c.WallTime == 0
}
