// Package metrics collects the performance counters used by the
// paper's evaluation (§5.1): number of distance computations, number of
// queue insertions, and the I/O activity from which response time is
// derived. A Collector is threaded through the join algorithms and the
// storage layer so a single query run yields one consistent snapshot.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// IOCostModel charges simulated time for page I/O. The defaults mirror
// the testbed of the paper's §5.1: a disk delivering about 0.5 MB/s for
// random accesses and 5 MB/s for sequential accesses with 4 KB pages.
type IOCostModel struct {
	// PageSize is the page size in bytes used to convert bandwidths
	// into per-page costs.
	PageSize int
	// RandomBytesPerSec is the sustained random-access bandwidth.
	RandomBytesPerSec float64
	// SequentialBytesPerSec is the sustained sequential bandwidth.
	SequentialBytesPerSec float64
}

// DefaultIOCostModel returns the cost model of the paper's testbed.
func DefaultIOCostModel() IOCostModel {
	return IOCostModel{
		PageSize:              4096,
		RandomBytesPerSec:     512 * 1024,
		SequentialBytesPerSec: 5 * 1024 * 1024,
	}
}

// RandomPageCost returns the charged duration of one random page I/O.
func (m IOCostModel) RandomPageCost() time.Duration {
	if m.RandomBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(m.PageSize) / m.RandomBytesPerSec * float64(time.Second))
}

// SequentialPageCost returns the charged duration of one sequential
// page I/O.
func (m IOCostModel) SequentialPageCost() time.Duration {
	if m.SequentialBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(m.PageSize) / m.SequentialBytesPerSec * float64(time.Second))
}

// Collector accumulates the counters for one query execution. The zero
// value is ready to use. A nil *Collector is also safe: every method
// becomes a no-op, so library code can thread an optional collector
// without nil checks at each call site.
//
// A Collector is not safe for concurrent mutation. Parallel query
// execution gives each worker goroutine its own shard (see Shards) and
// merges the shards into the query's collector at synchronization
// points, so the plain int64 fields never race.
type Collector struct {
	// RealDistCalcs counts real (Euclidean MBR) distance computations.
	RealDistCalcs int64
	// AxisDistCalcs counts cheap one-dimensional axis distance
	// computations performed during plane sweeping.
	AxisDistCalcs int64
	// RefinementCalcs counts exact-geometry distance refinements
	// (join.Options.Refiner invocations).
	RefinementCalcs int64
	// MainQueueInserts counts insertions into the main queue.
	MainQueueInserts int64
	// DistQueueInserts counts insertions into the distance queue.
	DistQueueInserts int64
	// CompQueueInserts counts insertions into the compensation queue.
	CompQueueInserts int64
	// NodeAccessesLogical counts R-tree node reads including buffer
	// hits (the parenthesized "no buffer" numbers of Table 2 count
	// these, since every logical access would be physical then).
	NodeAccessesLogical int64
	// NodeAccessesPhysical counts R-tree node reads that missed the
	// buffer pool and went to the page store.
	NodeAccessesPhysical int64
	// QueuePageReads / QueuePageWrites count hybrid-queue segment I/O.
	QueuePageReads  int64
	QueuePageWrites int64
	// SortPageReads / SortPageWrites count external-sort run I/O
	// (SJ-SORT only).
	SortPageReads  int64
	SortPageWrites int64
	// MainQueuePeak is the largest observed main-queue population
	// (memory + disk), the quantity behind §4.4's sizing discussion.
	MainQueuePeak int64
	// ResultsProduced counts object pairs reported to the caller.
	ResultsProduced int64
	// CompensationStages counts how many compensation stages ran
	// (AM-KDJ: 0 or 1; AM-IDJ: any number).
	CompensationStages int64

	// BufferHits / BufferMisses count R-tree buffer pool page
	// accesses attributed to this query (hits served from a frame,
	// misses read through to the store). Their ratio is the pool
	// hit-ratio gauge of the Prometheus export.
	BufferHits   int64
	BufferMisses int64
	// BufferEvictions counts frames the query's misses pushed out of
	// the pool (LRU victims, whether or not dirty).
	BufferEvictions int64

	// ModeledIOTime is simulated time charged by the IOCostModel for
	// every physical page access.
	ModeledIOTime time.Duration
	// WallTime is the measured wall-clock time, set by Finish.
	WallTime time.Duration

	// lastEstimateMode is the most recent eDmax correction mode the
	// adaptive engine applied ("initial", "arithmetic", "geometric",
	// "override"); empty until the first estimate. Unexported on
	// purpose: the reflection exporters require every exported field
	// to be int64-kind, and the serving telemetry reads it through
	// EstimateMode instead.
	lastEstimateMode string

	start time.Time
}

// Start records the wall-clock start of a run.
func (c *Collector) Start() {
	if c == nil {
		return
	}
	c.start = time.Now()
}

// Finish records the wall-clock end of a run.
func (c *Collector) Finish() {
	if c == nil {
		return
	}
	if !c.start.IsZero() {
		c.WallTime = time.Since(c.start)
	}
}

// Reset zeroes all counters.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	*c = Collector{}
}

// AddRealDist records n real-distance computations.
func (c *Collector) AddRealDist(n int64) {
	if c != nil {
		c.RealDistCalcs += n
	}
}

// AddAxisDist records n axis-distance computations.
func (c *Collector) AddAxisDist(n int64) {
	if c != nil {
		c.AxisDistCalcs += n
	}
}

// AddRefinement records n exact-geometry refinement computations.
func (c *Collector) AddRefinement(n int64) {
	if c != nil {
		c.RefinementCalcs += n
	}
}

// AddMainQueueInsert records n main-queue insertions.
func (c *Collector) AddMainQueueInsert(n int64) {
	if c != nil {
		c.MainQueueInserts += n
	}
}

// AddDistQueueInsert records n distance-queue insertions.
func (c *Collector) AddDistQueueInsert(n int64) {
	if c != nil {
		c.DistQueueInserts += n
	}
}

// AddCompQueueInsert records n compensation-queue insertions.
func (c *Collector) AddCompQueueInsert(n int64) {
	if c != nil {
		c.CompQueueInserts += n
	}
}

// NodeAccess records one logical node access; physical reports whether
// it missed the buffer pool. The charged I/O time uses cost.
func (c *Collector) NodeAccess(physical bool, cost time.Duration) {
	if c == nil {
		return
	}
	c.NodeAccessesLogical++
	if physical {
		c.NodeAccessesPhysical++
		c.ModeledIOTime += cost
	}
}

// BufferAccess records one buffer pool access — a hit or a miss —
// together with the number of frames the access evicted (always zero
// for hits).
func (c *Collector) BufferAccess(hit bool, evictions int64) {
	if c == nil {
		return
	}
	if hit {
		c.BufferHits++
		return
	}
	c.BufferMisses++
	c.BufferEvictions += evictions
}

// BufferHitRatio returns hits / (hits + misses), or 0 before any
// access — the hit-ratio gauge of the Prometheus export.
func (c *Collector) BufferHitRatio() float64 {
	if c == nil || c.BufferHits+c.BufferMisses == 0 {
		return 0
	}
	return float64(c.BufferHits) / float64(c.BufferHits+c.BufferMisses)
}

// QueueIO records hybrid-queue page traffic with charged time.
func (c *Collector) QueueIO(reads, writes int64, cost time.Duration) {
	if c == nil {
		return
	}
	c.QueuePageReads += reads
	c.QueuePageWrites += writes
	c.ModeledIOTime += time.Duration(reads+writes) * cost
}

// SortIO records external-sort page traffic with charged time.
func (c *Collector) SortIO(reads, writes int64, cost time.Duration) {
	if c == nil {
		return
	}
	c.SortPageReads += reads
	c.SortPageWrites += writes
	c.ModeledIOTime += time.Duration(reads+writes) * cost
}

// ObserveQueueLen updates the main-queue high-water mark.
func (c *Collector) ObserveQueueLen(n int) {
	if c != nil && int64(n) > c.MainQueuePeak {
		c.MainQueuePeak = int64(n)
	}
}

// AddResult records n produced result pairs.
func (c *Collector) AddResult(n int64) {
	if c != nil {
		c.ResultsProduced += n
	}
}

// SetEstimateMode records the eDmax correction mode of the latest
// re-estimation. The argument is always one of the engine's constant
// mode strings, so recording allocates nothing.
func (c *Collector) SetEstimateMode(mode string) {
	if c != nil {
		c.lastEstimateMode = mode
	}
}

// EstimateMode returns the most recent eDmax correction mode, or ""
// when the query never re-estimated (nil-safe).
func (c *Collector) EstimateMode() string {
	if c == nil {
		return ""
	}
	return c.lastEstimateMode
}

// AddCompensationStage records that a compensation stage began.
func (c *Collector) AddCompensationStage() {
	if c != nil {
		c.CompensationStages++
	}
}

// DistCalcs returns the total number of distance computations (axis
// plus real), the quantity plotted in Figures 10(a), 12(a), and 14(a).
func (c *Collector) DistCalcs() int64 {
	if c == nil {
		return 0
	}
	return c.RealDistCalcs + c.AxisDistCalcs
}

// QueueInserts returns total insertions across all queues, the
// quantity plotted in Figures 10(b), 12(b), and 14(b).
func (c *Collector) QueueInserts() int64 {
	if c == nil {
		return 0
	}
	return c.MainQueueInserts + c.DistQueueInserts + c.CompQueueInserts
}

// ResponseTime returns the modeled response time: wall-clock CPU time
// plus charged I/O time. On modern hardware the wall clock alone
// under-represents the I/O regime of the paper's 1999 testbed; the sum
// restores comparable proportions.
func (c *Collector) ResponseTime() time.Duration {
	if c == nil {
		return 0
	}
	return c.WallTime + c.ModeledIOTime
}

// Add accumulates o into c (used for cumulative stepwise runs, Fig 15).
func (c *Collector) Add(o *Collector) {
	if c == nil || o == nil {
		return
	}
	c.RealDistCalcs += o.RealDistCalcs
	c.AxisDistCalcs += o.AxisDistCalcs
	c.RefinementCalcs += o.RefinementCalcs
	c.MainQueueInserts += o.MainQueueInserts
	c.DistQueueInserts += o.DistQueueInserts
	c.CompQueueInserts += o.CompQueueInserts
	c.NodeAccessesLogical += o.NodeAccessesLogical
	c.NodeAccessesPhysical += o.NodeAccessesPhysical
	c.QueuePageReads += o.QueuePageReads
	c.QueuePageWrites += o.QueuePageWrites
	c.SortPageReads += o.SortPageReads
	c.SortPageWrites += o.SortPageWrites
	if o.MainQueuePeak > c.MainQueuePeak {
		c.MainQueuePeak = o.MainQueuePeak
	}
	c.ResultsProduced += o.ResultsProduced
	c.CompensationStages += o.CompensationStages
	c.BufferHits += o.BufferHits
	c.BufferMisses += o.BufferMisses
	c.BufferEvictions += o.BufferEvictions
	c.ModeledIOTime += o.ModeledIOTime
	c.WallTime += o.WallTime
	if o.lastEstimateMode != "" {
		c.lastEstimateMode = o.lastEstimateMode
	}
}

// String renders a one-line summary, convenient for logs.
func (c *Collector) String() string {
	if c == nil {
		return "<nil metrics>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dist=%d (axis=%d real=%d) qins=%d nodes=%d/%d io=%v wall=%v",
		c.DistCalcs(), c.AxisDistCalcs, c.RealDistCalcs,
		c.QueueInserts(), c.NodeAccessesPhysical, c.NodeAccessesLogical,
		c.ModeledIOTime.Round(time.Microsecond), c.WallTime.Round(time.Microsecond))
	return b.String()
}
