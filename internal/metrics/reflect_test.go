package metrics

import (
	"reflect"
	"testing"
)

// exportedNumericFields enumerates the exported fields of Collector,
// failing the test if a field of an unexpected type sneaks in (every
// exported field must be int64 or time.Duration so Add/Reset/isZero
// and the trace exporters can handle it uniformly).
func exportedNumericFields(t *testing.T) []reflect.StructField {
	t.Helper()
	typ := reflect.TypeOf(Collector{})
	var fields []reflect.StructField
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("Collector field %s has unsupported type %s (exported fields must be int64-kind)", f.Name, f.Type)
		}
		fields = append(fields, f)
	}
	if len(fields) == 0 {
		t.Fatal("Collector has no exported fields")
	}
	return fields
}

// TestCollectorFieldCoverage sets every exported Collector field to a
// nonzero value, one at a time, and asserts that isZero notices it,
// Add propagates it, and Reset clears it. A counter added to the
// struct but forgotten in any of those methods fails here immediately
// — the same safety net the reflection-based exporters in
// internal/trace provide for the metrics export.
func TestCollectorFieldCoverage(t *testing.T) {
	for _, f := range exportedNumericFields(t) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			var src Collector
			reflect.ValueOf(&src).Elem().FieldByIndex(f.Index).SetInt(7)

			if src.isZero() {
				t.Errorf("isZero ignores field %s", f.Name)
			}

			var dst Collector
			dst.Add(&src)
			got := reflect.ValueOf(&dst).Elem().FieldByIndex(f.Index).Int()
			if got == 0 {
				t.Errorf("Add does not propagate field %s", f.Name)
			}

			src.Reset()
			if v := reflect.ValueOf(&src).Elem().FieldByIndex(f.Index).Int(); v != 0 {
				t.Errorf("Reset leaves field %s = %d", f.Name, v)
			}
			if !src.isZero() {
				t.Errorf("isZero false after Reset (field %s)", f.Name)
			}
		})
	}
}

// TestCollectorAddAccumulates double-checks Add's semantics on a fully
// populated collector: every summable field doubles, and the peak
// field takes the maximum.
func TestCollectorAddAccumulates(t *testing.T) {
	fields := exportedNumericFields(t)
	var a Collector
	av := reflect.ValueOf(&a).Elem()
	for i, f := range fields {
		av.FieldByIndex(f.Index).SetInt(int64(i + 1))
	}
	b := a // copy
	a.Add(&b)
	for i, f := range fields {
		want := int64(2 * (i + 1))
		if f.Name == "MainQueuePeak" {
			want = int64(i + 1) // max, not sum
		}
		if got := av.FieldByIndex(f.Index).Int(); got != want {
			t.Errorf("after Add, field %s = %d, want %d", f.Name, got, want)
		}
	}
}

// TestBufferAccess exercises the buffer attribution counters directly.
func TestBufferAccess(t *testing.T) {
	var c Collector
	c.BufferAccess(true, 0)
	c.BufferAccess(false, 3)
	c.BufferAccess(false, 0)
	if c.BufferHits != 1 || c.BufferMisses != 2 || c.BufferEvictions != 3 {
		t.Fatalf("BufferAccess counters = %d/%d/%d, want 1/2/3",
			c.BufferHits, c.BufferMisses, c.BufferEvictions)
	}
	if got, want := c.BufferHitRatio(), 1.0/3.0; got != want {
		t.Fatalf("BufferHitRatio = %v, want %v", got, want)
	}
	var zero Collector
	if zero.BufferHitRatio() != 0 {
		t.Fatal("BufferHitRatio of zero collector must be 0")
	}
	var nilC *Collector
	nilC.BufferAccess(true, 1) // must not panic
}
