package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// SVG renders the table as a line chart — one series per value column
// over the first (x) column — approximating the paper's figures. Axes
// switch to log scale when the data spans more than a decade of
// positive values, as the paper's plots do. Tables with non-numeric
// cells (e.g. Table 2's "a (b)" entries) are not renderable and return
// an error.
func (t *Table) SVG(w io.Writer) error {
	xs, series, err := t.numericColumns()
	if err != nil {
		return err
	}
	const (
		width   = 640
		height  = 420
		mLeft   = 70
		mRight  = 160
		mTop    = 40
		mBottom = 50
	)
	plotW := float64(width - mLeft - mRight)
	plotH := float64(height - mTop - mBottom)

	xScale := newAxisScale(xs)
	var all []float64
	for _, s := range series {
		all = append(all, s.values...)
	}
	yScale := newAxisScale(all)

	px := func(x float64) float64 { return mLeft + xScale.frac(x)*plotW }
	py := func(y float64) float64 { return mTop + (1-yScale.frac(y))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="13" font-weight="bold">%s: %s</text>`+"\n",
		mLeft, xmlEscape(t.ID), xmlEscape(t.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		mLeft, mTop, mLeft, height-mBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		mLeft, height-mBottom, width-mRight, height-mBottom)

	// Ticks.
	for _, tick := range xScale.ticks() {
		x := px(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-mBottom, x, height-mBottom+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, height-mBottom+18, fmtTick(tick))
	}
	for _, tick := range yScale.ticks() {
		y := py(tick)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			mLeft-4, y, mLeft, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			mLeft-8, y, fmtTick(tick))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		mLeft+int(plotW/2), height-12, xmlEscape(t.Columns[0]))

	// Series.
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	for i, s := range series {
		color := palette[i%len(palette)]
		var pts []string
		for j, v := range s.values {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(xs[j]), py(v)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for j, v := range s.values {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(xs[j]), py(v), color)
		}
		// Legend.
		ly := mTop + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"/>`+"\n",
			width-mRight+10, ly, width-mRight+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			width-mRight+40, ly, xmlEscape(s.name))
	}
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// numericColumns parses the table into an x vector and value series.
func (t *Table) numericColumns() ([]float64, []svgSeries, error) {
	if len(t.Columns) < 2 || len(t.Rows) == 0 {
		return nil, nil, fmt.Errorf("experiments: table %q is not chartable", t.ID)
	}
	xs := make([]float64, len(t.Rows))
	series := make([]svgSeries, len(t.Columns)-1)
	for i := range series {
		series[i] = svgSeries{name: t.Columns[i+1], values: make([]float64, len(t.Rows))}
	}
	for r, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return nil, nil, fmt.Errorf("experiments: table %q row %d is ragged", t.ID, r)
		}
		for cIdx, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: table %q cell %q is not numeric", t.ID, cell)
			}
			if cIdx == 0 {
				xs[r] = v
			} else {
				series[cIdx-1].values[r] = v
			}
		}
	}
	return xs, series, nil
}

type svgSeries struct {
	name   string
	values []float64
}

// axisScale maps data values to [0,1], linearly or logarithmically.
type axisScale struct {
	log      bool
	min, max float64
}

func newAxisScale(vals []float64) axisScale {
	min, max := math.Inf(1), math.Inf(-1)
	allPos := true
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if v <= 0 {
			allPos = false
		}
	}
	if !(min < math.Inf(1)) {
		min, max = 0, 1
	}
	//lint:allow floatcmp degenerate-range sentinel on plot axis bounds; widening is cosmetic either way
	if min == max {
		// Degenerate: widen so frac is defined.
		if min == 0 {
			max = 1
		} else {
			min, max = min*0.9, max*1.1
		}
	}
	if allPos && max/min > 10 {
		return axisScale{log: true, min: min, max: max}
	}
	return axisScale{min: min, max: max}
}

func (a axisScale) frac(v float64) float64 {
	var f float64
	if a.log {
		f = (math.Log10(v) - math.Log10(a.min)) / (math.Log10(a.max) - math.Log10(a.min))
	} else {
		f = (v - a.min) / (a.max - a.min)
	}
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ticks returns 4-6 tick positions.
func (a axisScale) ticks() []float64 {
	if a.log {
		var out []float64
		for p := math.Floor(math.Log10(a.min)); p <= math.Ceil(math.Log10(a.max)); p++ {
			v := math.Pow(10, p)
			if v >= a.min*0.999 && v <= a.max*1.001 {
				out = append(out, v)
			}
		}
		if len(out) >= 2 {
			return out
		}
	}
	const n = 5
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, a.min+(a.max-a.min)*float64(i)/(n-1))
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3ge6", v/1e6)
	case av >= 1000:
		return fmt.Sprintf("%.4gk", v/1000)
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
