package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one reproduced figure or table: a header row and data rows,
// rendered as aligned text or CSV.
type Table struct {
	// ID is the experiment identifier, e.g. "fig10a" or "table2".
	ID string
	// Title describes the table, e.g. the paper's caption.
	Title string
	// Columns are the header labels; the first column is the x value.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carries caveats (scaling, substitutions).
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		fmt.Fprintln(w, b.String())
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// formatting helpers shared by the experiment drivers.

func fmtInt(v int64) string { return fmt.Sprintf("%d", v) }

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
