package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func chartableTable() *Table {
	t := &Table{
		ID:      "figX",
		Title:   "demo <series> & data",
		Columns: []string{"k", "A", "B"},
	}
	t.AddRow("10", "100", "4000")
	t.AddRow("100", "900", "3500")
	t.AddRow("1000", "8000", "3000")
	return t
}

func TestSVGRendersChartableTable(t *testing.T) {
	var buf bytes.Buffer
	if err := chartableTable().SVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "figX",
		"&lt;series&gt; &amp; data", // XML escaping
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series => two polylines and two legend labels.
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Fatalf("%d polylines, want 2", n)
	}
	if !strings.Contains(out, ">A</text>") || !strings.Contains(out, ">B</text>") {
		t.Fatal("legend labels missing")
	}
}

func TestSVGRejectsNonNumeric(t *testing.T) {
	tab := &Table{ID: "t", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2 (3)")
	if err := tab.SVG(&bytes.Buffer{}); err == nil {
		t.Fatal("non-numeric table must be rejected")
	}
	empty := &Table{ID: "e", Columns: []string{"a", "b"}}
	if err := empty.SVG(&bytes.Buffer{}); err == nil {
		t.Fatal("empty table must be rejected")
	}
	ragged := &Table{ID: "r", Columns: []string{"a", "b"}}
	ragged.Rows = append(ragged.Rows, []string{"1"})
	if err := ragged.SVG(&bytes.Buffer{}); err == nil {
		t.Fatal("ragged table must be rejected")
	}
}

func TestAxisScale(t *testing.T) {
	// Wide positive spread => log scale.
	a := newAxisScale([]float64{1, 10, 10000})
	if !a.log {
		t.Fatal("expected log scale")
	}
	if f := a.frac(1); f != 0 {
		t.Fatalf("frac(min) = %g", f)
	}
	if f := a.frac(10000); f != 1 {
		t.Fatalf("frac(max) = %g", f)
	}
	if f := a.frac(100); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("log midpoint frac = %g", f)
	}
	// Contains zero => linear.
	b := newAxisScale([]float64{0, 5, 10})
	if b.log {
		t.Fatal("zero forces linear scale")
	}
	if f := b.frac(5); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("linear midpoint frac = %g", f)
	}
	// Degenerate single value.
	c := newAxisScale([]float64{7})
	if f := c.frac(7); f < 0 || f > 1 {
		t.Fatalf("degenerate frac = %g", f)
	}
	d := newAxisScale(nil)
	if f := d.frac(0.5); f < 0 || f > 1 {
		t.Fatalf("empty-scale frac = %g", f)
	}
	// Clamping.
	if f := b.frac(-100); f != 0 {
		t.Fatalf("clamp low = %g", f)
	}
	if f := b.frac(1e9); f != 1 {
		t.Fatalf("clamp high = %g", f)
	}
}

func TestAxisTicks(t *testing.T) {
	log := newAxisScale([]float64{1, 1000})
	ticks := log.ticks()
	if len(ticks) < 3 {
		t.Fatalf("log ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if math.Abs(ticks[i]/ticks[i-1]-10) > 1e-9 {
			t.Fatalf("log ticks not decades: %v", ticks)
		}
	}
	lin := newAxisScale([]float64{0, 8})
	if got := lin.ticks(); len(got) != 5 || got[0] != 0 || got[4] != 8 {
		t.Fatalf("linear ticks: %v", got)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		5:         "5",
		1500:      "1.5k",
		2_000_000: "2e6",
		0.001:     "1.0e-03",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}

// Real experiment tables at tiny scale render.
func TestSVGOnRealExperiment(t *testing.T) {
	tabs, err := Fig12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		var buf bytes.Buffer
		if err := tab.SVG(&buf); err != nil {
			t.Fatalf("%s: %v", tab.ID, err)
		}
		if !strings.Contains(buf.String(), "<svg") {
			t.Fatalf("%s: no svg output", tab.ID)
		}
	}
}
