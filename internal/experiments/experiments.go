package experiments

import (
	"fmt"

	"distjoin/internal/datagen"
	"distjoin/internal/estimate"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
)

// Fig10 reproduces Figure 10 — k-distance join performance vs k:
// (a) number of distance computations, (b) number of queue insertions,
// (c) response time — for HS-KDJ, B-KDJ, AM-KDJ, and SJ-SORT.
func Fig10(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	algos := []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort}
	tabs := newMetricTables("fig10", "k-distance join vs k", "k", algos, cfg)
	for _, k := range cfg.KSeries() {
		row := make([]*metrics.Collector, len(algos))
		for i, a := range algos {
			mc, err := w.RunKDJ(a, k, join.Options{})
			if err != nil {
				return nil, err
			}
			row[i] = mc
		}
		addMetricRows(tabs, fmtInt(int64(k)), row)
	}
	return tabs, nil
}

// Table2 reproduces Table 2 — the number of R-tree nodes fetched from
// disk per algorithm and k, with the parenthesized "no buffer" number
// (every logical access physical) alongside.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	algos := []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort}
	t := &Table{
		ID:      "table2",
		Title:   "R-tree node accesses for k-distance joins (buffered, parenthesized = unbuffered)",
		Columns: []string{"algorithm"},
		Notes:   scaleNotes(cfg),
	}
	ks := cfg.Table2KSeries()
	for _, k := range ks {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	for _, a := range algos {
		row := []string{string(a)}
		for _, k := range ks {
			mc, err := w.RunKDJ(a, k, join.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d (%d)", mc.NodeAccessesPhysical, mc.NodeAccessesLogical))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 reproduces Figure 11 — the improvement from the optimized
// plane sweep: axis and real distance computations of B-KDJ with the
// sweeping axis/direction selection on vs fixed (x-axis, forward).
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig11",
		Title: "B-KDJ distance computations: optimized vs fixed plane sweep",
		Columns: []string{"k",
			"axis(opt)", "real(opt)", "total(opt)",
			"axis(fixed)", "real(fixed)", "total(fixed)", "saved%"},
		Notes: scaleNotes(cfg),
	}
	fixed := join.FixedSweep
	for _, k := range cfg.KSeries() {
		on, err := w.RunKDJ(AlgoBKDJ, k, join.Options{})
		if err != nil {
			return nil, err
		}
		off, err := w.RunKDJ(AlgoBKDJ, k, join.Options{Sweep: &fixed})
		if err != nil {
			return nil, err
		}
		saved := 0.0
		if off.DistCalcs() > 0 {
			saved = 100 * (1 - float64(on.DistCalcs())/float64(off.DistCalcs()))
		}
		t.AddRow(fmtInt(int64(k)),
			fmtInt(on.AxisDistCalcs), fmtInt(on.RealDistCalcs), fmtInt(on.DistCalcs()),
			fmtInt(off.AxisDistCalcs), fmtInt(off.RealDistCalcs), fmtInt(off.DistCalcs()),
			fmt.Sprintf("%.1f", saved))
	}
	return t, nil
}

// Fig12 reproduces Figure 12 — incremental distance join performance
// vs k for HS-IDJ and AM-IDJ: distance computations, queue insertions,
// response time.
func Fig12(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	algos := []Algo{AlgoHSIDJ, AlgoAMIDJ}
	tabs := newMetricTables("fig12", "incremental distance join vs k", "k", algos, cfg)
	for _, k := range cfg.KSeries() {
		row := make([]*metrics.Collector, len(algos))
		for i, a := range algos {
			opts := join.Options{}
			if a == AlgoAMIDJ {
				opts.BatchK = k // one estimated stage targets the pull size
			}
			mc, err := w.RunIDJ(a, k, opts)
			if err != nil {
				return nil, err
			}
			row[i] = mc
		}
		addMetricRows(tabs, fmtInt(int64(k)), row)
	}
	return tabs, nil
}

// Fig13 reproduces Figure 13 — response time vs memory size (the
// in-memory main-queue portion and R-tree buffer are both set to each
// size), at the largest k of the series.
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	algos := []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort}
	t := &Table{
		ID:      "fig13",
		Title:   "response time (s) vs memory size, k = largest of series",
		Columns: []string{"memKB"},
		Notes:   scaleNotes(cfg),
	}
	for _, a := range algos {
		t.Columns = append(t.Columns, string(a))
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	// Memory sizes scale with the workload so the constrained regime
	// of the paper's 64 KB..1 MB sweep is preserved.
	for _, kb := range []int{64, 128, 256, 512, 1024} {
		memBytes := int(float64(kb*1024) * cfg.Scale * 20) // 512 KB at scale≈0.05 ≈ paper 512 KB/full
		if memBytes < 4096 {
			memBytes = 4096
		}
		w.Streets.ResizeBuffer(memBytes)
		w.Hydro.ResizeBuffer(memBytes)
		row := []string{fmtInt(int64(kb))}
		for _, a := range algos {
			mc, err := w.RunKDJ(a, k, join.Options{QueueMemBytes: memBytes})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(mc.ResponseTime()))
		}
		t.AddRow(row...)
	}
	// Restore the default buffer size for subsequent experiments.
	w.Streets.ResizeBuffer(cfg.BufferBytes)
	w.Hydro.ResizeBuffer(cfg.BufferBytes)
	return t, nil
}

// Fig14 reproduces Figure 14 — AM-KDJ performance vs the accuracy of
// the eDmax estimate, sweeping eDmax from 0.1x to 10x the real Dmax at
// the largest k; B-KDJ and HS-KDJ appear as flat references.
func Fig14(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	dmax, err := w.Dmax(k)
	if err != nil {
		return nil, err
	}
	bk, err := w.RunKDJ(AlgoBKDJ, k, join.Options{})
	if err != nil {
		return nil, err
	}
	hs, err := w.RunKDJ(AlgoHSKDJ, k, join.Options{})
	if err != nil {
		return nil, err
	}

	mk := func(suffix, what string) *Table {
		return &Table{
			ID:      "fig14" + suffix,
			Title:   fmt.Sprintf("AM-KDJ %s vs eDmax accuracy (k=%d)", what, k),
			Columns: []string{"eDmax/Dmax", "AM-KDJ", "B-KDJ", "HS-KDJ", "comp.stages"},
			Notes:   scaleNotes(cfg),
		}
	}
	ta, tb, tc := mk("a", "distance computations"), mk("b", "queue insertions"), mk("c", "response time (s)")
	for _, f := range []float64{0.1, 0.2, 0.5, 1, 2, 5, 10} {
		mc, err := w.RunKDJ(AlgoAMKDJ, k, join.Options{EDmax: dmax * f})
		if err != nil {
			return nil, err
		}
		x := fmtF(f)
		cs := fmtInt(mc.CompensationStages)
		ta.AddRow(x, fmtInt(mc.DistCalcs()), fmtInt(bk.DistCalcs()), fmtInt(hs.DistCalcs()), cs)
		tb.AddRow(x, fmtInt(mc.QueueInserts()), fmtInt(bk.QueueInserts()), fmtInt(hs.QueueInserts()), cs)
		tc.AddRow(x, fmtDur(mc.ResponseTime()), fmtDur(bk.ResponseTime()), fmtDur(hs.ResponseTime()), cs)
	}
	return []*Table{ta, tb, tc}, nil
}

// Fig15 reproduces Figure 15 — stepwise incremental execution: users
// repeatedly request the next batch of nearest pairs until ten batches
// are delivered. HS-IDJ and AM-IDJ run once each (cumulative time
// recorded at each checkpoint); SJ-SORT restarts per step with the
// oracle Dmax and its measurements accumulate, as in the paper.
func Fig15(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	batch := scaleK(10000, cfg.Scale)
	const steps = 10
	t := &Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("stepwise incremental execution, %d pairs per step (s, cumulative)", batch),
		Columns: []string{"k", "HS-IDJ", "AM-IDJ(est)", "AM-IDJ(real)", "SJ-SORT(cum)"},
		Notes:   scaleNotes(cfg),
	}

	// One incremental run, checkpointed per batch.
	checkpointed := func(algo Algo, opts join.Options) ([]metrics.Collector, error) {
		if err := w.coldStart(); err != nil {
			return nil, err
		}
		mc := &metrics.Collector{}
		opts.Metrics = mc
		opts.QueueMemBytes = cfg.QueueMemBytes
		var next func() (join.Result, bool)
		var errf func() error
		switch algo {
		case AlgoHSIDJ:
			it, err := join.HSIDJ(w.Streets, w.Hydro, opts)
			if err != nil {
				return nil, err
			}
			next, errf = it.Next, it.Err
		case AlgoAMIDJ:
			it, err := join.AMIDJ(w.Streets, w.Hydro, opts)
			if err != nil {
				return nil, err
			}
			next, errf = it.Next, it.Err
		}
		mc.Start()
		snaps := make([]metrics.Collector, 0, steps)
		for s := 0; s < steps; s++ {
			for i := 0; i < batch; i++ {
				if _, ok := next(); !ok {
					if err := errf(); err != nil {
						return nil, err
					}
					break // join exhausted; later checkpoints repeat
				}
			}
			mc.Finish() // cumulative wall time since Start
			snaps = append(snaps, *mc)
		}
		return snaps, nil
	}

	hsSnaps, err := checkpointed(AlgoHSIDJ, join.Options{})
	if err != nil {
		return nil, err
	}
	estSnaps, err := checkpointed(AlgoAMIDJ, join.Options{BatchK: batch})
	if err != nil {
		return nil, err
	}
	oracleHook := func(k, produced int, lastDist float64) float64 {
		d, err := w.Dmax(k)
		if err != nil {
			return lastDist * 2
		}
		return d
	}
	realSnaps, err := checkpointed(AlgoAMIDJ, join.Options{BatchK: batch, EDmaxForK: oracleHook})
	if err != nil {
		return nil, err
	}

	var sjCum metrics.Collector
	for s := 1; s <= steps; s++ {
		k := s * batch
		mc, err := w.RunKDJ(AlgoSJSort, k, join.Options{})
		if err != nil {
			return nil, err
		}
		sjCum.Add(mc)
		t.AddRow(fmtInt(int64(k)),
			fmtDur(hsSnaps[s-1].ResponseTime()),
			fmtDur(estSnaps[s-1].ResponseTime()),
			fmtDur(realSnaps[s-1].ResponseTime()),
			fmtDur(sjCum.ResponseTime()))
	}
	return t, nil
}

// newMetricTables builds the (a) distance computations, (b) queue
// insertions, (c) response time table triple used by Figures 10 and 12.
func newMetricTables(id, title, xlabel string, algos []Algo, cfg Config) []*Table {
	mk := func(suffix, what string) *Table {
		t := &Table{
			ID:      id + suffix,
			Title:   title + " — " + what,
			Columns: []string{xlabel},
			Notes:   scaleNotes(cfg),
		}
		for _, a := range algos {
			t.Columns = append(t.Columns, string(a))
		}
		return t
	}
	return []*Table{
		mk("a", "number of distance computations"),
		mk("b", "number of queue insertions"),
		mk("c", "response time (s)"),
	}
}

// addMetricRows appends one x value's measurements to a table triple.
func addMetricRows(tabs []*Table, x string, row []*metrics.Collector) {
	a := []string{x}
	b := []string{x}
	c := []string{x}
	for _, mc := range row {
		a = append(a, fmtInt(mc.DistCalcs()))
		b = append(b, fmtInt(mc.QueueInserts()))
		c = append(c, fmtDur(mc.ResponseTime()))
	}
	tabs[0].AddRow(a...)
	tabs[1].AddRow(b...)
	tabs[2].AddRow(c...)
}

func scaleNotes(cfg Config) []string {
	return []string{fmt.Sprintf(
		"scale=%g: %d streets x %d hydro objects (paper: %d x %d); k series scaled to match k/N ratios",
		cfg.Scale,
		int(float64(FullStreets)*cfg.Scale), int(float64(FullHydro)*cfg.Scale),
		FullStreets, FullHydro)}
}

// Ablations beyond the paper's figures (DESIGN.md A1–A4).

// AblationSweep (A1) isolates axis selection vs direction selection.
func AblationSweep(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	t := &Table{
		ID:      "ablation-sweep",
		Title:   fmt.Sprintf("B-KDJ sweep policy ablation (k=%d)", k),
		Columns: []string{"policy", "axis calcs", "real calcs", "total", "queue ins", "resp (s)"},
		Notes:   scaleNotes(cfg),
	}
	policies := []struct {
		name string
		sp   join.SweepPolicy
	}{
		{"neither (fixed x, forward)", join.FixedSweep},
		{"axis only", join.SweepPolicy{SelectAxis: true}},
		{"direction only", join.SweepPolicy{SelectDirection: true}},
		{"both (paper)", join.OptimizedSweep},
	}
	for _, p := range policies {
		sp := p.sp
		mc, err := w.RunKDJ(AlgoBKDJ, k, join.Options{Sweep: &sp})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, fmtInt(mc.AxisDistCalcs), fmtInt(mc.RealDistCalcs),
			fmtInt(mc.DistCalcs()), fmtInt(mc.QueueInserts()), fmtDur(mc.ResponseTime()))
	}
	return t, nil
}

// AblationDQ (A2) compares the distance-queue feed policies of
// footnote 1: object pairs only (the paper's choice) vs all pairs with
// retired upper bounds (Hjaltason & Samet's scheme).
func AblationDQ(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-dq",
		Title:   "B-KDJ distance-queue policy ablation",
		Columns: []string{"k", "dist(obj-only)", "dist(all)", "qins(obj-only)", "qins(all)", "resp(obj-only)", "resp(all)"},
		Notes:   scaleNotes(cfg),
	}
	for _, k := range cfg.KSeries() {
		objOnly, err := w.RunKDJ(AlgoBKDJ, k, join.Options{DistanceQueue: join.ObjectPairsOnly})
		if err != nil {
			return nil, err
		}
		all, err := w.RunKDJ(AlgoBKDJ, k, join.Options{DistanceQueue: join.AllPairs})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(int64(k)),
			fmtInt(objOnly.DistCalcs()), fmtInt(all.DistCalcs()),
			fmtInt(objOnly.QueueInserts()), fmtInt(all.QueueInserts()),
			fmtDur(objOnly.ResponseTime()), fmtDur(all.ResponseTime()))
	}
	return t, nil
}

// AblationCorrection (A3) compares the eDmax correction combinations
// of §4.3.2 for AM-IDJ.
func AblationCorrection(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	batch := k / 10
	if batch < 1 {
		batch = 1
	}
	t := &Table{
		ID:      "ablation-correction",
		Title:   fmt.Sprintf("AM-IDJ eDmax correction ablation (k=%d, batch=%d)", k, batch),
		Columns: []string{"mode", "dist calcs", "queue ins", "comp stages", "resp (s)"},
		Notes:   scaleNotes(cfg),
	}
	for _, mode := range []estimate.Mode{
		estimate.Aggressive, estimate.Conservative,
		estimate.ArithmeticOnly, estimate.GeometricOnly,
	} {
		mc, err := w.RunIDJ(AlgoAMIDJ, k, join.Options{BatchK: batch, Correction: mode})
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.String(), fmtInt(mc.DistCalcs()), fmtInt(mc.QueueInserts()),
			fmtInt(mc.CompensationStages), fmtDur(mc.ResponseTime()))
	}
	return t, nil
}

// AblationQueue (A4) compares the §4.4 model-based hybrid queue
// boundaries against pure overflow splitting, under tight memory.
func AblationQueue(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	t := &Table{
		ID:      "ablation-queue",
		Title:   fmt.Sprintf("hybrid queue boundary model ablation (B-KDJ, k=%d)", k),
		Columns: []string{"queue memKB", "qpages(model)", "qpages(splits)", "resp(model)", "resp(splits)"},
		Notes:   scaleNotes(cfg),
	}
	for _, kb := range []int{4, 16, 64, 256} {
		mem := kb * 1024
		model, err := w.RunKDJ(AlgoBKDJ, k, join.Options{QueueMemBytes: mem})
		if err != nil {
			return nil, err
		}
		splits, err := w.RunKDJ(AlgoBKDJ, k, join.Options{QueueMemBytes: mem, DisableQueueModel: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(int64(kb)),
			fmtInt(model.QueuePageReads+model.QueuePageWrites),
			fmtInt(splits.QueuePageReads+splits.QueuePageWrites),
			fmtDur(model.ResponseTime()), fmtDur(splits.ResponseTime()))
	}
	return t, nil
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	add := func(ts []*Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, ts...)
		return nil
	}
	one := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	if err := add(Fig10(cfg)); err != nil {
		return nil, err
	}
	if err := one(Table2(cfg)); err != nil {
		return nil, err
	}
	if err := one(Fig11(cfg)); err != nil {
		return nil, err
	}
	if err := add(Fig12(cfg)); err != nil {
		return nil, err
	}
	if err := one(Fig13(cfg)); err != nil {
		return nil, err
	}
	if err := add(Fig14(cfg)); err != nil {
		return nil, err
	}
	if err := one(Fig15(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationSweep(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationDQ(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationCorrection(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationQueue(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationEstimator(cfg)); err != nil {
		return nil, err
	}
	if err := one(AblationSplit(cfg)); err != nil {
		return nil, err
	}
	if err := one(QueueSizes(cfg)); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationEstimator (A5) compares the uniform eDmax model (Eq. 3)
// against the grid-histogram estimator (the §6 future-work strategy)
// on the skewed TIGER-like workload: estimate accuracy, compensation
// stages, and total work for AM-KDJ and AM-IDJ.
func AblationEstimator(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.KSeries()[len(cfg.KSeries())-1]
	dmax, err := w.Dmax(k)
	if err != nil {
		return nil, err
	}
	hist, err := join.NewHistogramEstimator(w.Streets, w.Hydro, 0)
	if err != nil {
		return nil, err
	}
	uni, err := estimate.NewModel(w.Streets.Bounds(), w.Streets.Size(),
		w.Hydro.Bounds(), w.Hydro.Size())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-estimator",
		Title: fmt.Sprintf("eDmax estimator ablation (k=%d, real Dmax=%.4g)", k, dmax),
		Columns: []string{"estimator", "est/real", "KDJ dist", "KDJ comp",
			"IDJ dist", "IDJ qins", "IDJ stages", "IDJ resp (s)"},
		Notes: scaleNotes(cfg),
	}
	batch := k / 10
	if batch < 1 {
		batch = 1
	}
	for _, row := range []struct {
		name string
		est  estimate.Estimator
	}{
		{"uniform (Eq. 3)", nil}, // nil selects the default model
		{"histogram (§6)", hist},
	} {
		var initial float64
		if row.est != nil {
			initial = row.est.Initial(k)
		} else {
			initial = uni.Initial(k)
		}
		kdj, err := w.RunKDJ(AlgoAMKDJ, k, join.Options{Estimator: row.est})
		if err != nil {
			return nil, err
		}
		idj, err := w.RunIDJ(AlgoAMIDJ, k, join.Options{Estimator: row.est, BatchK: batch})
		if err != nil {
			return nil, err
		}
		ratio := "inf"
		if dmax > 0 {
			ratio = fmt.Sprintf("%.2f", initial/dmax)
		}
		t.AddRow(row.name, ratio,
			fmtInt(kdj.DistCalcs()), fmtInt(kdj.CompensationStages),
			fmtInt(idj.DistCalcs()), fmtInt(idj.QueueInserts()),
			fmtInt(idj.CompensationStages), fmtDur(idj.ResponseTime()))
	}
	return t, nil
}

// QueueSizes reproduces the §5.6 queue-size observation: the
// compensation queue stays orders of magnitude smaller than the main
// queue ("less than 0.5 percent" in the paper's runs). Measured per k
// for AM-KDJ with a deliberately underestimated eDmax so the
// compensation machinery is actually exercised.
func QueueSizes(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "queue-sizes",
		Title:   "AM-KDJ queue populations (eDmax = 0.5 x real Dmax)",
		Columns: []string{"k", "main peak", "main inserts", "comp entries", "comp/main %"},
		Notes:   scaleNotes(cfg),
	}
	for _, k := range cfg.KSeries() {
		dmax, err := w.Dmax(k)
		if err != nil {
			return nil, err
		}
		eDmax := dmax * 0.5
		if eDmax == 0 {
			eDmax = dmax
		}
		mc, err := w.RunKDJ(AlgoAMKDJ, k, join.Options{EDmax: eDmax})
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if mc.MainQueuePeak > 0 {
			ratio = 100 * float64(mc.CompQueueInserts) / float64(mc.MainQueuePeak)
		}
		t.AddRow(fmtInt(int64(k)), fmtInt(mc.MainQueuePeak), fmtInt(mc.MainQueueInserts),
			fmtInt(mc.CompQueueInserts), fmt.Sprintf("%.2f", ratio))
	}
	return t, nil
}

// AblationSplit (A6) studies how index quality feeds join cost: trees
// are built by one-at-a-time insertion under the R* split (the paper's
// setting), Guttman's quadratic split, and Guttman's linear split, and
// B-KDJ runs over each. Bulk loading is bypassed on purpose — split
// quality only matters for dynamically built trees.
func AblationSplit(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	// Insertion-built trees are expensive; use a reduced slice of the
	// workload regardless of the configured scale.
	nStreets := int(float64(FullStreets) * cfg.Scale / 2)
	nHydro := int(float64(FullHydro) * cfg.Scale / 2)
	if nStreets > 40000 {
		nStreets = 40000
	}
	if nHydro > 12000 {
		nHydro = 12000
	}
	if nStreets < 100 {
		nStreets = 100
	}
	if nHydro < 100 {
		nHydro = 100
	}
	streets := datagen.TigerStreets(cfg.Seed, nStreets)
	hydro := datagen.TigerHydro(cfg.Seed+1, nHydro)
	k := scaleK(100000, cfg.Scale) / 2
	if k < 1 {
		k = 1
	}

	t := &Table{
		ID:    "ablation-split",
		Title: fmt.Sprintf("R-tree split policy vs B-KDJ cost (insertion-built, %d x %d, k=%d)", nStreets, nHydro, k),
		Columns: []string{"split", "leaf overlap", "nodes",
			"dist calcs", "node reads (unbuf)", "resp (s)"},
		Notes: scaleNotes(cfg),
	}
	for _, p := range []rtree.SplitPolicy{rtree.SplitRStar, rtree.SplitQuadratic, rtree.SplitLinear} {
		build := func(items []rtree.Item) (*rtree.Tree, float64, error) {
			b, err := rtree.NewBuilderForPageSize(storage.DefaultPageSize)
			if err != nil {
				return nil, 0, err
			}
			b.SetSplitPolicy(p)
			for _, it := range items {
				b.Insert(it.Rect, it.Obj)
			}
			overlap := b.TotalLeafOverlap()
			tree, err := b.Pack(storage.NewMemStore(storage.DefaultPageSize), cfg.BufferBytes)
			return tree, overlap, err
		}
		left, ovL, err := build(streets)
		if err != nil {
			return nil, err
		}
		right, ovR, err := build(hydro)
		if err != nil {
			return nil, err
		}
		mc := &metrics.Collector{}
		if _, err := join.BKDJ(left, right, k, join.Options{
			Metrics:       mc,
			QueueMemBytes: cfg.QueueMemBytes,
		}); err != nil {
			return nil, err
		}
		t.AddRow(p.String(), fmtF(ovL+ovR), fmtInt(int64(left.NumNodes()+right.NumNodes())),
			fmtInt(mc.DistCalcs()), fmtInt(mc.NodeAccessesLogical), fmtDur(mc.ResponseTime()))
	}
	return t, nil
}
