package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"distjoin/internal/benchrec"
	"distjoin/internal/hybridq"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
)

// PerfRecord runs the continuous-benchmark suite and returns the
// schema-versioned record that `distjoin-bench -bench-json` writes and
// the CI gate diffs against the committed baseline.
//
// The suite covers every algorithm at two scaled cardinalities (the
// paper's k=1,000 and k=10,000 points), each as a cold start, plus one
// parallel AM-KDJ entry whose counters are scheduling-dependent and
// therefore informational in the diff. Serial counters are fully
// deterministic for a given (scale, seed), which is what makes the
// 25% regression gate trustworthy on shared CI runners.
func PerfRecord(cfg Config, parallelism int) (*benchrec.Record, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	// Resolve the SJ-SORT distance oracle once up front so its
	// brute-force pass isn't attributed to the first SJ-SORT entry's
	// wall clock or allocations.
	ks := scaleKSeries([]int{1000, 10000}, cfg.Scale)
	if _, err := w.Dmax(ks[len(ks)-1]); err != nil {
		return nil, err
	}

	rec := &benchrec.Record{
		Schema:    benchrec.SchemaVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
	}

	measure := func(name string, algo Algo, k, par int,
		run func() (*metrics.Collector, error)) error {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		mc, err := run()
		if err != nil {
			return fmt.Errorf("bench entry %s: %w", name, err)
		}
		runtime.ReadMemStats(&after)
		rec.Entries = append(rec.Entries,
			benchrec.FromCollector(name, string(algo), k, par, mc,
				after.TotalAlloc-before.TotalAlloc))
		return nil
	}

	for _, k := range ks {
		k := k
		for _, algo := range []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort} {
			algo := algo
			name := fmt.Sprintf("%s/k=%d", algo, k)
			err := measure(name, algo, k, 0, func() (*metrics.Collector, error) {
				return w.RunKDJ(algo, k, join.Options{})
			})
			if err != nil {
				return nil, err
			}
		}
		for _, algo := range []Algo{AlgoHSIDJ, AlgoAMIDJ} {
			algo := algo
			name := fmt.Sprintf("%s/k=%d", algo, k)
			err := measure(name, algo, k, 0, func() (*metrics.Collector, error) {
				return w.RunIDJ(algo, k, join.Options{})
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// Leaf-sweep batch-kernel series: a within-distance join at the
	// larger k's oracle distance. WithinJoin runs every expansion with
	// a fixed axis cutoff, so all leaf refinement goes through the
	// struct-of-arrays batch kernels — this is the entry that guards
	// the SoA hot path specifically. Counters are fully deterministic
	// for a given (scale, seed).
	{
		k := ks[len(ks)-1]
		dmax, err := w.Dmax(k)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("WITHIN/k=%d", k)
		err = measure(name, "WITHIN", k, 0, func() (*metrics.Collector, error) {
			return w.RunWithin(dmax, join.Options{})
		})
		if err != nil {
			return nil, err
		}
	}

	// Pooled hybrid-queue series: a pure queue spill/reload cycle with
	// a deliberately tiny memory budget, so every push/pop round trips
	// through heap splits and segment swap-ins. This isolates the
	// pooled disk path (pair slabs, page buffers, segments) from the
	// join algorithms; the insert and page-I/O counters are
	// deterministic for the fixed driver sequence.
	if err := measureQueueCycle(measure); err != nil {
		return nil, err
	}

	// One parallel AM-KDJ point at the larger k: wall clock is the
	// interesting signal; counters are worker-order dependent.
	if parallelism > 1 || parallelism == join.AutoParallelism {
		k := ks[len(ks)-1]
		name := fmt.Sprintf("AM-KDJ/k=%d/parallel", k)
		err := measure(name, AlgoAMKDJ, k, parallelism, func() (*metrics.Collector, error) {
			return w.RunKDJ(AlgoAMKDJ, k, join.Options{Parallelism: parallelism})
		})
		if err != nil {
			return nil, err
		}
		// Sharded AM-KDJ series at the same k: partition-parallel
		// execution over 4 and 9 shards. Entries carry Parallelism > 1,
		// which benchrec.Compare treats as informational (non-gating) —
		// cmd/benchdiff reports them as fresh coverage until a baseline
		// records them.
		for _, shards := range []int{4, 9} {
			shards := shards
			name := fmt.Sprintf("AM-KDJ/k=%d/sharded/s=%d", k, shards)
			err := measure(name, AlgoAMKDJ, k, parallelism, func() (*metrics.Collector, error) {
				return w.RunKDJSharded(k, shards, parallelism)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return rec, nil
}

// queueCycleN is the number of pairs the QUEUE/spill-reload entry
// pushes and pops per cycle; queueCycleBudget forces the cycle through
// many heap splits and segment reloads so the pooled disk path — not
// the in-memory heap — dominates.
const (
	queueCycleN      = 20000
	queueCycleBudget = 64 * hybridq.RecordSize
)

// measureQueueCycle records the QUEUE/spill-reload benchmark entry: a
// deterministic push/pop cycle through a hybrid queue small enough
// that nearly every pair spills to disk and reloads. Distances come
// from a fixed-seed generator, so the spill pattern — and with it the
// insert and page-I/O counters — is identical across runs.
func measureQueueCycle(measure func(name string, algo Algo, k, par int,
	run func() (*metrics.Collector, error)) error) error {
	return measure("QUEUE/spill-reload", "QUEUE", queueCycleN, 0,
		func() (*metrics.Collector, error) {
			mc := &metrics.Collector{}
			mc.Start()
			defer mc.Finish()
			q := hybridq.New(hybridq.Config{
				MemBytes: queueCycleBudget,
				Metrics:  mc,
			})
			rng := rand.New(rand.NewSource(20000516))
			for i := 0; i < queueCycleN; i++ {
				q.Push(hybridq.Pair{
					Dist:     rng.Float64() * 1000,
					LeftObj:  true,
					RightObj: true,
					Left:     uint64(i),
					Right:    uint64(i),
				})
				mc.AddMainQueueInsert(1)
			}
			popped := 0
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
				popped++
			}
			if err := q.Err(); err != nil {
				return nil, err
			}
			if popped != queueCycleN {
				return nil, fmt.Errorf("queue cycle popped %d pairs, want %d", popped, queueCycleN)
			}
			return mc, nil
		})
}
