package experiments

import (
	"fmt"
	"runtime"
	"time"

	"distjoin/internal/benchrec"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
)

// PerfRecord runs the continuous-benchmark suite and returns the
// schema-versioned record that `distjoin-bench -bench-json` writes and
// the CI gate diffs against the committed baseline.
//
// The suite covers every algorithm at two scaled cardinalities (the
// paper's k=1,000 and k=10,000 points), each as a cold start, plus one
// parallel AM-KDJ entry whose counters are scheduling-dependent and
// therefore informational in the diff. Serial counters are fully
// deterministic for a given (scale, seed), which is what makes the
// 25% regression gate trustworthy on shared CI runners.
func PerfRecord(cfg Config, parallelism int) (*benchrec.Record, error) {
	cfg = cfg.withDefaults()
	w, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	// Resolve the SJ-SORT distance oracle once up front so its
	// brute-force pass isn't attributed to the first SJ-SORT entry's
	// wall clock or allocations.
	ks := scaleKSeries([]int{1000, 10000}, cfg.Scale)
	if _, err := w.Dmax(ks[len(ks)-1]); err != nil {
		return nil, err
	}

	rec := &benchrec.Record{
		Schema:    benchrec.SchemaVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
	}

	measure := func(name string, algo Algo, k, par int,
		run func() (*metrics.Collector, error)) error {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		mc, err := run()
		if err != nil {
			return fmt.Errorf("bench entry %s: %w", name, err)
		}
		runtime.ReadMemStats(&after)
		rec.Entries = append(rec.Entries,
			benchrec.FromCollector(name, string(algo), k, par, mc,
				after.TotalAlloc-before.TotalAlloc))
		return nil
	}

	for _, k := range ks {
		k := k
		for _, algo := range []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort} {
			algo := algo
			name := fmt.Sprintf("%s/k=%d", algo, k)
			err := measure(name, algo, k, 0, func() (*metrics.Collector, error) {
				return w.RunKDJ(algo, k, join.Options{})
			})
			if err != nil {
				return nil, err
			}
		}
		for _, algo := range []Algo{AlgoHSIDJ, AlgoAMIDJ} {
			algo := algo
			name := fmt.Sprintf("%s/k=%d", algo, k)
			err := measure(name, algo, k, 0, func() (*metrics.Collector, error) {
				return w.RunIDJ(algo, k, join.Options{})
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// One parallel AM-KDJ point at the larger k: wall clock is the
	// interesting signal; counters are worker-order dependent.
	if parallelism > 1 || parallelism == join.AutoParallelism {
		k := ks[len(ks)-1]
		name := fmt.Sprintf("AM-KDJ/k=%d/parallel", k)
		err := measure(name, AlgoAMKDJ, k, parallelism, func() (*metrics.Collector, error) {
			return w.RunKDJ(AlgoAMKDJ, k, join.Options{Parallelism: parallelism})
		})
		if err != nil {
			return nil, err
		}
		// Sharded AM-KDJ series at the same k: partition-parallel
		// execution over 4 and 9 shards. Entries carry Parallelism > 1,
		// which benchrec.Compare treats as informational (non-gating) —
		// cmd/benchdiff reports them as fresh coverage until a baseline
		// records them.
		for _, shards := range []int{4, 9} {
			shards := shards
			name := fmt.Sprintf("AM-KDJ/k=%d/sharded/s=%d", k, shards)
			err := measure(name, AlgoAMKDJ, k, parallelism, func() (*metrics.Collector, error) {
				return w.RunKDJSharded(k, shards, parallelism)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return rec, nil
}
