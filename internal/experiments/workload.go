// Package experiments implements the paper's evaluation (§5): the
// TIGER-like workload, per-figure experiment drivers, and table
// formatting. It is shared by cmd/distjoin-bench (the CLI harness) and
// the repository-level benchmarks in bench_test.go.
//
// Every experiment is parameterized by a Scale factor: the paper joins
// 633,461 Arizona street segments with 189,642 hydrographic objects
// and sweeps the stopping cardinality k up to 100,000; scaling
// multiplies both data sizes and the k series so the k/N ratios — and
// therefore the comparative shapes the paper reports — are preserved
// at laptop-friendly run times.
package experiments

import (
	"fmt"
	"sync"

	"distjoin/internal/datagen"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/rtree"
	"distjoin/internal/shard"
	"distjoin/internal/storage"
)

// Paper-scale dataset sizes (§5.1).
const (
	FullStreets = 633461
	FullHydro   = 189642
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies the paper's data sizes and k series (1.0 =
	// full TIGER-scale). Typical: 0.05 for an interactive harness run,
	// 0.01 for benchmarks.
	Scale float64
	// QueueMemBytes is the in-memory main-queue portion (default the
	// paper's 512 KB).
	QueueMemBytes int
	// BufferBytes is the R-tree buffer pool size (default 512 KB).
	BufferBytes int
	// Seed drives the synthetic data generators.
	Seed int64
	// Parallelism is forwarded to join.Options.Parallelism for every
	// query the harness runs: 0 or 1 keeps the paper-exact serial
	// execution (the default — the paper's counters assume it),
	// n > 1 uses n expansion workers, join.AutoParallelism uses
	// GOMAXPROCS. Results are identical either way; wall-clock and
	// per-expansion counter totals differ.
	Parallelism int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.QueueMemBytes <= 0 {
		c.QueueMemBytes = 512 * 1024
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 512 * 1024
	}
	if c.Seed == 0 {
		c.Seed = 20000516 // SIGMOD 2000, May 16
	}
	return c
}

// KSeries returns the paper's k sweep {10, 100, 1k, 10k, 100k} scaled
// (deduplicated: small scales collapse the low end).
func (c Config) KSeries() []int {
	return scaleKSeries([]int{10, 100, 1000, 10000, 100000}, c.Scale)
}

// Table2KSeries returns Table 2's k values {100, 1k, 10k, 100k} scaled.
func (c Config) Table2KSeries() []int {
	return scaleKSeries([]int{100, 1000, 10000, 100000}, c.Scale)
}

func scaleKSeries(ks []int, scale float64) []int {
	out := make([]int, 0, len(ks))
	for _, k := range ks {
		s := scaleK(k, scale)
		if len(out) == 0 || s > out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func scaleK(k int, scale float64) int {
	s := int(float64(k) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Workload is the prepared join input: two packed R*-trees over the
// TIGER-like streets and hydrography sets, plus the distance oracle
// the SJ-SORT baseline and Figures 14/15 need.
type Workload struct {
	Cfg     Config
	Streets *rtree.Tree
	Hydro   *rtree.Tree
	NLeft   int
	NRight  int

	oracleOnce sync.Once
	oracleErr  error
	oracle     []float64 // oracle[i] = distance of the (i+1)-th nearest pair
}

var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*Workload{}
)

// Load builds (or returns a cached) workload for cfg. Workloads are
// cached per (scale, seed, buffer) since tree construction dominates
// harness start-up.
func Load(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%g/%d/%d", cfg.Scale, cfg.Seed, cfg.BufferBytes)
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w, nil
	}
	nStreets := int(float64(FullStreets) * cfg.Scale)
	nHydro := int(float64(FullHydro) * cfg.Scale)
	if nStreets < 10 {
		nStreets = 10
	}
	if nHydro < 10 {
		nHydro = 10
	}
	streets, err := buildTree(datagen.TigerStreets(cfg.Seed, nStreets), cfg.BufferBytes)
	if err != nil {
		return nil, fmt.Errorf("experiments: build streets: %w", err)
	}
	hydro, err := buildTree(datagen.TigerHydro(cfg.Seed+1, nHydro), cfg.BufferBytes)
	if err != nil {
		return nil, fmt.Errorf("experiments: build hydro: %w", err)
	}
	w := &Workload{Cfg: cfg, Streets: streets, Hydro: hydro, NLeft: nStreets, NRight: nHydro}
	workloadCache[key] = w
	return w, nil
}

func buildTree(items []rtree.Item, bufferBytes int) (*rtree.Tree, error) {
	b, err := rtree.NewBuilderForPageSize(storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	b.BulkLoad(items)
	return b.Pack(storage.NewMemStore(storage.DefaultPageSize), bufferBytes)
}

// Dmax returns the real distance of the k-th nearest pair — the
// oracle the paper grants SJ-SORT and uses to parameterize Figures 14
// and 15. Computed once per workload with B-KDJ at the largest k.
func (w *Workload) Dmax(k int) (float64, error) {
	w.oracleOnce.Do(func() {
		maxK := scaleK(100000, w.Cfg.Scale)
		res, err := join.BKDJ(w.Streets, w.Hydro, maxK, join.Options{
			QueueMemBytes: 64 << 20, // oracle run: plenty of memory
		})
		if err != nil {
			w.oracleErr = err
			return
		}
		w.oracle = make([]float64, len(res))
		for i, r := range res {
			w.oracle[i] = r.Dist
		}
	})
	if w.oracleErr != nil {
		return 0, w.oracleErr
	}
	if k <= 0 || len(w.oracle) == 0 {
		return 0, fmt.Errorf("experiments: no oracle distance for k=%d", k)
	}
	if k > len(w.oracle) {
		k = len(w.oracle)
	}
	return w.oracle[k-1], nil
}

// ColdStart clears both trees' buffer pools so a measured run begins
// with cold caches — exposed for harness modes that drive the join
// entry points directly (e.g. cmd/distjoin-bench's traced query).
func (w *Workload) ColdStart() error { return w.coldStart() }

// coldStart clears both trees' buffer pools so each measured run
// begins with cold caches, as the paper's direct-I/O setup ensured.
func (w *Workload) coldStart() error {
	if err := w.Streets.Pool().Invalidate(); err != nil {
		return err
	}
	return w.Hydro.Pool().Invalidate()
}

// Algo identifies one algorithm in the harness output.
type Algo string

// Algorithm identifiers used across experiment tables.
const (
	AlgoHSKDJ  Algo = "HS-KDJ"
	AlgoBKDJ   Algo = "B-KDJ"
	AlgoAMKDJ  Algo = "AM-KDJ"
	AlgoSJSort Algo = "SJ-SORT"
	AlgoHSIDJ  Algo = "HS-IDJ"
	AlgoAMIDJ  Algo = "AM-IDJ"
)

// RunKDJ executes one cold k-distance-join query and returns its
// collected metrics.
func (w *Workload) RunKDJ(algo Algo, k int, opts join.Options) (*metrics.Collector, error) {
	var dmax float64
	if algo == AlgoSJSort {
		// Resolve the oracle before the cold start: the lazy oracle
		// run would otherwise warm the buffers mid-measurement.
		var err error
		if dmax, err = w.Dmax(k); err != nil {
			return nil, err
		}
	}
	if err := w.coldStart(); err != nil {
		return nil, err
	}
	mc := &metrics.Collector{}
	opts.Metrics = mc
	if opts.QueueMemBytes == 0 {
		opts.QueueMemBytes = w.Cfg.QueueMemBytes
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = w.Cfg.Parallelism
	}
	var err error
	switch algo {
	case AlgoHSKDJ:
		_, err = join.HSKDJ(w.Streets, w.Hydro, k, opts)
	case AlgoBKDJ:
		_, err = join.BKDJ(w.Streets, w.Hydro, k, opts)
	case AlgoAMKDJ:
		_, err = join.AMKDJ(w.Streets, w.Hydro, k, opts)
	case AlgoSJSort:
		_, err = join.SJSort(w.Streets, w.Hydro, k, dmax, opts)
	default:
		err = fmt.Errorf("experiments: unknown KDJ algorithm %q", algo)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s k=%d: %w", algo, k, err)
	}
	return mc, nil
}

// RunWithin executes one cold within-distance join at the given
// threshold and returns its collected metrics. The fixed cutoff makes
// this the canonical batch-kernel workload: every leaf sweep refines
// candidates through the struct-of-arrays distance kernels rather than
// the scalar entry-at-a-time loop, so this entry isolates the kernel
// hot path from queue and compensation machinery.
func (w *Workload) RunWithin(maxDist float64, opts join.Options) (*metrics.Collector, error) {
	if err := w.coldStart(); err != nil {
		return nil, err
	}
	mc := &metrics.Collector{}
	opts.Metrics = mc
	if opts.QueueMemBytes == 0 {
		opts.QueueMemBytes = w.Cfg.QueueMemBytes
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = w.Cfg.Parallelism
	}
	err := join.WithinJoin(w.Streets, w.Hydro, maxDist, opts, func(join.Result) bool {
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: WITHIN d=%g: %w", maxDist, err)
	}
	return mc, nil
}

// RunKDJSharded executes one cold AM-KDJ query through the
// partition-parallel sharded executor and returns its collected
// metrics. Wall clock is the interesting signal; the counters are
// worker-order dependent (pruning races the cutoff), so benchmark
// entries recorded from this path must carry Parallelism > 1 to stay
// informational in the regression gate.
func (w *Workload) RunKDJSharded(k, shards, parallelism int) (*metrics.Collector, error) {
	if err := w.coldStart(); err != nil {
		return nil, err
	}
	mc := &metrics.Collector{}
	opts := join.Options{
		Metrics:       mc,
		QueueMemBytes: w.Cfg.QueueMemBytes,
		Parallelism:   parallelism,
	}
	cfg := shard.Config{Shards: shards}
	if _, err := shard.KDJ(w.Streets, w.Hydro, k, shard.AMKDJ, cfg, opts); err != nil {
		return nil, fmt.Errorf("experiments: AM-KDJ/s%d k=%d: %w", shards, k, err)
	}
	return mc, nil
}

// RunIDJ executes one cold incremental join pulling k results and
// returns its collected metrics.
func (w *Workload) RunIDJ(algo Algo, k int, opts join.Options) (*metrics.Collector, error) {
	if err := w.coldStart(); err != nil {
		return nil, err
	}
	mc := &metrics.Collector{}
	opts.Metrics = mc
	if opts.QueueMemBytes == 0 {
		opts.QueueMemBytes = w.Cfg.QueueMemBytes
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = w.Cfg.Parallelism
	}
	mc.Start()
	defer mc.Finish()
	pull := func(next func() (join.Result, bool), errf func() error) error {
		for i := 0; i < k; i++ {
			if _, ok := next(); !ok {
				return errf()
			}
		}
		return errf()
	}
	var err error
	switch algo {
	case AlgoHSIDJ:
		var it *join.HSIDJIterator
		if it, err = join.HSIDJ(w.Streets, w.Hydro, opts); err == nil {
			err = pull(it.Next, it.Err)
		}
	case AlgoAMIDJ:
		var it *join.AMIDJIterator
		if it, err = join.AMIDJ(w.Streets, w.Hydro, opts); err == nil {
			err = pull(it.Next, it.Err)
		}
	default:
		err = fmt.Errorf("experiments: unknown IDJ algorithm %q", algo)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s k=%d: %w", algo, k, err)
	}
	return mc, nil
}
