package experiments

import (
	"bytes"
	"strings"
	"testing"

	"distjoin/internal/join"
)

// tiny configuration so the whole suite runs in seconds.
func tinyConfig() Config {
	return Config{Scale: 0.002, Seed: 42}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.05 || c.QueueMemBytes != 512*1024 || c.BufferBytes != 512*1024 || c.Seed == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	ks := c.KSeries()
	if len(ks) != 5 || ks[0] < 1 || ks[4] != 5000 {
		t.Fatalf("k series: %v", ks)
	}
	t2 := c.Table2KSeries()
	if len(t2) != 4 {
		t.Fatalf("table2 series: %v", t2)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("k series not increasing: %v", ks)
		}
	}
}

func TestLoadCachesWorkload(t *testing.T) {
	cfg := tinyConfig()
	w1, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("same config must return the cached workload")
	}
	if w1.Streets.Size() == 0 || w1.Hydro.Size() == 0 {
		t.Fatal("empty workload trees")
	}
}

func TestDmaxOracle(t *testing.T) {
	w, err := Load(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	d10, err := w.Dmax(10)
	if err != nil {
		t.Fatal(err)
	}
	d100, err := w.Dmax(100)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping streets/hydro make distance-0 pairs legitimate; the
	// oracle must only be nonnegative and monotone in k.
	if d10 < 0 || d100 < d10 {
		t.Fatalf("oracle not monotone: Dmax(10)=%g Dmax(100)=%g", d10, d100)
	}
	if _, err := w.Dmax(0); err == nil {
		t.Fatal("Dmax(0) must error")
	}
}

func TestRunKDJAllAlgorithms(t *testing.T) {
	w, err := Load(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algo{AlgoHSKDJ, AlgoBKDJ, AlgoAMKDJ, AlgoSJSort} {
		mc, err := w.RunKDJ(a, 20, join.Options{})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if mc.DistCalcs() == 0 {
			t.Fatalf("%s: no distance computations recorded", a)
		}
		if mc.NodeAccessesLogical == 0 {
			t.Fatalf("%s: no node accesses recorded", a)
		}
	}
	if _, err := w.RunKDJ(Algo("nope"), 10, join.Options{}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestRunIDJ(t *testing.T) {
	w, err := Load(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algo{AlgoHSIDJ, AlgoAMIDJ} {
		mc, err := w.RunIDJ(a, 25, join.Options{})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if mc.ResultsProduced != 25 {
			t.Fatalf("%s: produced %d, want 25", a, mc.ResultsProduced)
		}
	}
	if _, err := w.RunIDJ(Algo("nope"), 10, join.Options{}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	tabs, err := All(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{
		"fig10a", "fig10b", "fig10c", "table2", "fig11",
		"fig12a", "fig12b", "fig12c", "fig13",
		"fig14a", "fig14b", "fig14c", "fig15",
		"ablation-sweep", "ablation-dq", "ablation-correction", "ablation-queue",
		"ablation-estimator", "ablation-split", "queue-sizes",
	}
	if len(tabs) != len(wantIDs) {
		t.Fatalf("got %d tables, want %d", len(tabs), len(wantIDs))
	}
	for i, id := range wantIDs {
		if tabs[i].ID != id {
			t.Fatalf("table %d = %q, want %q", i, tabs[i].ID, id)
		}
		if len(tabs[i].Rows) == 0 {
			t.Fatalf("table %q has no rows", id)
		}
		var buf bytes.Buffer
		tabs[i].Fprint(&buf)
		if !strings.Contains(buf.String(), tabs[i].ID) {
			t.Fatalf("Fprint of %q missing ID", id)
		}
		buf.Reset()
		tabs[i].CSV(&buf)
		if lines := strings.Count(buf.String(), "\n"); lines != len(tabs[i].Rows)+1 {
			t.Fatalf("CSV of %q has %d lines, want %d", id, lines, len(tabs[i].Rows)+1)
		}
	}
}

// The paper's headline comparisons, verified as inequalities on the
// tiny workload (who wins; exact factors vary with scale).
func TestHeadlineShapes(t *testing.T) {
	cfg := Config{Scale: 0.01, Seed: 7}
	w, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.KSeries()[3] // the 10k-equivalent point
	hs, err := w.RunKDJ(AlgoHSKDJ, k, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := w.RunKDJ(AlgoBKDJ, k, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	am, err := w.RunKDJ(AlgoAMKDJ, k, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10(a): B-KDJ and AM-KDJ compute far fewer distances than HS.
	if bk.DistCalcs() >= hs.DistCalcs() {
		t.Errorf("B-KDJ dist calcs %d !< HS-KDJ %d", bk.DistCalcs(), hs.DistCalcs())
	}
	if am.DistCalcs() >= hs.DistCalcs() {
		t.Errorf("AM-KDJ dist calcs %d !< HS-KDJ %d", am.DistCalcs(), hs.DistCalcs())
	}
	// Fig 10(b): AM-KDJ inserts no more than B-KDJ.
	if am.QueueInserts() > bk.QueueInserts() {
		t.Errorf("AM-KDJ queue inserts %d > B-KDJ %d", am.QueueInserts(), bk.QueueInserts())
	}
	// Table 2: bidirectional expansion reads far fewer nodes unbuffered.
	if bk.NodeAccessesLogical >= hs.NodeAccessesLogical {
		t.Errorf("B-KDJ logical node accesses %d !< HS-KDJ %d",
			bk.NodeAccessesLogical, hs.NodeAccessesLogical)
	}
	// IDJ: AM-IDJ eliminates most of HS-IDJ's work (Fig 12).
	hsi, err := w.RunIDJ(AlgoHSIDJ, k, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ami, err := w.RunIDJ(AlgoAMIDJ, k, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ami.DistCalcs() >= hsi.DistCalcs() {
		t.Errorf("AM-IDJ dist calcs %d !< HS-IDJ %d", ami.DistCalcs(), hsi.DistCalcs())
	}
	if ami.QueueInserts() >= hsi.QueueInserts() {
		t.Errorf("AM-IDJ queue inserts %d !< HS-IDJ %d", ami.QueueInserts(), hsi.QueueInserts())
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "bb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}
