package extsort

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/metrics"
	"distjoin/internal/storage"
)

var f64Codec = Codec[float64]{
	Size: 8,
	Encode: func(buf []byte, v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	},
	Decode: func(buf []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf))
	},
}

func f64Less(a, b float64) bool { return a < b }

func TestNewSorterValidation(t *testing.T) {
	if _, err := NewSorter(Codec[float64]{Size: 0}, f64Less, Config{}); err == nil {
		t.Fatal("zero record size must fail")
	}
	big := Codec[float64]{Size: 10000, Encode: f64Codec.Encode, Decode: f64Codec.Decode}
	if _, err := NewSorter(big, f64Less, Config{}); err == nil {
		t.Fatal("record bigger than page must fail")
	}
}

func sortAll(t *testing.T, vals []float64, memBytes int, mc *metrics.Collector) []float64 {
	t.Helper()
	s, err := NewSorter(f64Codec, f64Less, Config{
		MemBytes: memBytes,
		Metrics:  mc,
		IOCost:   metrics.DefaultIOCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		s.Add(v)
	}
	if s.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(vals))
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	return out
}

func TestInMemorySort(t *testing.T) {
	vals := []float64{5, 2, 9, 1, 7, 3, 3}
	got := sortAll(t, vals, 1<<20, nil)
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestExternalSortManyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	mc := &metrics.Collector{}
	got := sortAll(t, vals, 64*8, mc) // 64 records per run -> ~300 runs
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: %g != %g", i, got[i], want[i])
		}
	}
	if mc.SortPageWrites == 0 || mc.SortPageReads == 0 {
		t.Fatalf("expected sort I/O: r=%d w=%d", mc.SortPageReads, mc.SortPageWrites)
	}
}

func TestEmptySort(t *testing.T) {
	got := sortAll(t, nil, 1024, nil)
	if len(got) != 0 {
		t.Fatalf("empty sort produced %d records", len(got))
	}
}

func TestSingleRecord(t *testing.T) {
	got := sortAll(t, []float64{42}, 8, nil)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicatesPreserved(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 7)
	}
	got := sortAll(t, vals, 16*8, nil)
	counts := map[float64]int{}
	for _, v := range got {
		counts[v]++
	}
	for d := 0.0; d < 7; d++ {
		want := 1000 / 7
		if d < float64(1000%7) {
			want++
		}
		if counts[d] != want {
			t.Fatalf("value %g count %d, want %d", d, counts[d], want)
		}
	}
}

func TestAddAfterSortIgnored(t *testing.T) {
	s, err := NewSorter(f64Codec, f64Less, Config{MemBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1)
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	s.Add(2)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after post-Sort Add, want 1", s.Len())
	}
}

func TestErrPropagation(t *testing.T) {
	st := storage.NewMemStore(storage.DefaultPageSize)
	s, err := NewSorter(f64Codec, f64Less, Config{MemBytes: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1)
	st.Close()
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	if s.Err() == nil {
		t.Fatal("expected latched storage error")
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("Sort must surface the latched error")
	}
}

// Property: random data, random memory budgets — output always equals
// the reference sort.
func TestSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(3000)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Floor(rng.Float64() * 100) // many ties
		}
		mem := 8 * (1 + rng.Intn(200))
		got := sortAll(t, vals, mem, nil)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d index %d: %g != %g", trial, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkExternalSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := NewSorter(f64Codec, f64Less, Config{MemBytes: 4096})
		for _, v := range vals {
			s.Add(v)
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
}
