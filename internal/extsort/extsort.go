// Package extsort implements an external merge sort over fixed-size
// records stored on pages. SJ-SORT — the paper's spatial-join-then-sort
// baseline (§5) — uses it to order the candidate pairs produced by the
// within-predicate spatial join; the run and merge page traffic is
// charged to the metrics collector so the baseline's I/O appears in the
// response-time figures.
package extsort

import (
	"errors"
	"fmt"
	"sort"

	"distjoin/internal/metrics"
	"distjoin/internal/pqueue"
	"distjoin/internal/storage"
)

// Codec describes the fixed-size serialization of the record type.
type Codec[T any] struct {
	// Size is the encoded record size in bytes; must fit in one page.
	Size int
	// Encode writes rec into buf (Size bytes).
	Encode func(buf []byte, rec T)
	// Decode parses a record from buf (Size bytes).
	Decode func(buf []byte) T
}

// Sorter accumulates records, spilling sorted runs to a page store
// when the memory budget fills, and merges them on demand.
type Sorter[T any] struct {
	codec    Codec[T]
	less     func(a, b T) bool
	store    storage.Store
	mc       *metrics.Collector
	ioCost   metrics.IOCostModel
	memCap   int // records held in memory before a run spills
	perPage  int
	buf      []T
	page     []byte // reusable run-write page, allocated on first spill
	runs     []run
	cache    map[int]*pageCache
	total    int
	finished bool
	err      error
}

// run is one sorted spill: a page list plus its record count.
type run struct {
	pages []storage.PageID
	count int
}

// Config parameterizes a Sorter.
type Config struct {
	// MemBytes bounds the in-memory sort buffer (minimum one record).
	MemBytes int
	// Store receives spilled runs; nil allocates a private MemStore.
	Store storage.Store
	// Metrics receives sort I/O accounting (may be nil).
	Metrics *metrics.Collector
	// IOCost charges simulated time per run page.
	IOCost metrics.IOCostModel
}

// NewSorter returns an empty sorter for records ordered by less.
func NewSorter[T any](codec Codec[T], less func(a, b T) bool, cfg Config) (*Sorter[T], error) {
	st := cfg.Store
	if st == nil {
		st = storage.NewMemStore(storage.DefaultPageSize)
	}
	if codec.Size <= 0 || codec.Size > st.PageSize() {
		return nil, fmt.Errorf("extsort: record size %d invalid for page size %d",
			codec.Size, st.PageSize())
	}
	memCap := cfg.MemBytes / codec.Size
	if memCap < 1 {
		memCap = 1
	}
	return &Sorter[T]{
		codec:   codec,
		less:    less,
		store:   st,
		mc:      cfg.Metrics,
		ioCost:  cfg.IOCost,
		memCap:  memCap,
		perPage: st.PageSize() / codec.Size,
	}, nil
}

// Len returns the number of records added so far.
func (s *Sorter[T]) Len() int { return s.total }

// Err returns the first storage error encountered.
func (s *Sorter[T]) Err() error { return s.err }

// Add appends one record.
func (s *Sorter[T]) Add(rec T) {
	if s.err != nil || s.finished {
		return
	}
	s.buf = append(s.buf, rec)
	s.total++
	if len(s.buf) >= s.memCap {
		s.spillRun()
	}
}

// spillRun sorts the buffer and writes it out as one run.
func (s *Sorter[T]) spillRun() {
	if len(s.buf) == 0 {
		return
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	r := run{count: len(s.buf)}
	if s.page == nil {
		s.page = make([]byte, s.store.PageSize())
	}
	page := s.page
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		id, err := s.store.Alloc()
		if err != nil {
			s.err = err
			return
		}
		if err := s.store.WritePage(id, page); err != nil {
			s.err = err
			return
		}
		s.mc.SortIO(0, 1, s.ioCost.SequentialPageCost())
		r.pages = append(r.pages, id)
		n = 0
	}
	for _, rec := range s.buf {
		s.codec.Encode(page[n*s.codec.Size:], rec)
		n++
		if n == s.perPage {
			flush()
			if s.err != nil {
				return
			}
		}
	}
	flush()
	if s.err != nil {
		return
	}
	s.runs = append(s.runs, r)
	s.buf = s.buf[:0]
}

// Iterator yields merged records in nondecreasing order.
type Iterator[T any] struct {
	s     *Sorter[T]
	heads *pqueue.Heap[head[T]]
	err   error
}

// head is the cursor of one run in the merge.
type head[T any] struct {
	rec    T
	runIdx int
	recIdx int // index of rec within its run
}

// Sort finalizes the sorter and returns a merge iterator. The sorter
// accepts no further Adds.
func (s *Sorter[T]) Sort() (*Iterator[T], error) {
	if s.err != nil {
		return nil, s.err
	}
	s.finished = true
	s.spillRun()
	if s.err != nil {
		return nil, s.err
	}
	it := &Iterator[T]{
		s: s,
		heads: pqueue.NewHeap(func(a, b head[T]) bool {
			if s.less(a.rec, b.rec) {
				return true
			}
			if s.less(b.rec, a.rec) {
				return false
			}
			// Stable across runs for determinism.
			if a.runIdx != b.runIdx {
				return a.runIdx < b.runIdx
			}
			return a.recIdx < b.recIdx
		}),
	}
	for i := range s.runs {
		rec, ok, err := s.readRecord(i, 0)
		if err != nil {
			return nil, err
		}
		if ok {
			it.heads.Push(head[T]{rec: rec, runIdx: i, recIdx: 0})
		}
	}
	return it, nil
}

// readRecord fetches record recIdx of run runIdx. A tiny per-iterator
// cache would help huge merges; runs are read a page at a time and the
// most recent page of each run is memoized below.
func (s *Sorter[T]) readRecord(runIdx, recIdx int) (rec T, ok bool, err error) {
	r := s.runs[runIdx]
	if recIdx >= r.count {
		var zero T
		return zero, false, nil
	}
	pageIdx := recIdx / s.perPage
	off := recIdx % s.perPage
	page, err := s.pageOf(runIdx, pageIdx)
	if err != nil {
		var zero T
		return zero, false, err
	}
	return s.codec.Decode(page[off*s.codec.Size:]), true, nil
}

// pageCache memoizes the current page of each run during a merge.
type pageCache struct {
	pageIdx int
	data    []byte
}

var errNoPage = errors.New("extsort: page index out of run")

func (s *Sorter[T]) pageOf(runIdx, pageIdx int) ([]byte, error) {
	r := &s.runs[runIdx]
	if pageIdx >= len(r.pages) {
		return nil, errNoPage
	}
	if s.cache == nil {
		s.cache = make(map[int]*pageCache)
	}
	c := s.cache[runIdx]
	if c != nil && c.pageIdx == pageIdx {
		return c.data, nil
	}
	if c == nil {
		c = &pageCache{pageIdx: -1, data: make([]byte, s.store.PageSize())}
		s.cache[runIdx] = c
	}
	// Reuse the run's cache buffer across page advances: the merge
	// walks each run sequentially, so without reuse a merge allocates
	// one page per page read. The entry is invalidated before the read
	// so a failed ReadPage cannot leave stale bytes labeled with a
	// valid page index.
	c.pageIdx = -1
	if err := s.store.ReadPage(r.pages[pageIdx], c.data); err != nil {
		return nil, err
	}
	s.mc.SortIO(1, 0, s.ioCost.SequentialPageCost())
	c.pageIdx = pageIdx
	return c.data, nil
}

// Next returns the next record in sorted order; ok is false at the end
// or on error (check Err).
func (it *Iterator[T]) Next() (rec T, ok bool) {
	var zero T
	if it.err != nil || it.heads.Empty() {
		return zero, false
	}
	top := it.heads.Pop()
	next, ok2, err := it.s.readRecord(top.runIdx, top.recIdx+1)
	if err != nil {
		it.err = err
		return zero, false
	}
	if ok2 {
		it.heads.Push(head[T]{rec: next, runIdx: top.runIdx, recIdx: top.recIdx + 1})
	}
	return top.rec, true
}

// Err returns the first error encountered during iteration.
func (it *Iterator[T]) Err() error { return it.err }
