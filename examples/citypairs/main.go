// Citypairs: a larger "top-k matches" workload comparing the paper's
// algorithms head to head. A synthetic city is generated — clustered
// hotels downtown, restaurants spread along arterial roads — and the
// same k-distance join runs under every algorithm, printing each one's
// distance computations, queue insertions, node accesses, and modeled
// response time (the paper's Figure 10 metrics).
//
// Run with: go run ./examples/citypairs [-n 20000] [-k 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"distjoin"
)

func main() {
	n := flag.Int("n", 20000, "objects per data set")
	k := flag.Int("k", 100, "number of nearest pairs")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	hotels := makeClustered(rng, *n, 6)
	restaurants := makeArterial(rng, *n)

	hotelIdx, err := distjoin.NewIndex(hotels, nil)
	if err != nil {
		log.Fatal(err)
	}
	restIdx, err := distjoin.NewIndex(restaurants, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d hotels (height-%d index), %d restaurants (height-%d index)\n\n",
		hotelIdx.Len(), hotelIdx.Height(), restIdx.Len(), restIdx.Height())

	// Establish the oracle distance once so SJ-SORT can join in.
	oracle, err := distjoin.KDistanceJoin(hotelIdx, restIdx, *k, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(oracle) == 0 {
		log.Fatal("no pairs found")
	}
	dmax := oracle[len(oracle)-1].Dist
	fmt.Printf("true Dmax for k=%d: %.4f\n\n", *k, dmax)

	fmt.Printf("%-8s  %12s  %12s  %10s  %12s\n",
		"algo", "dist calcs", "queue ins", "node I/O", "response")
	for _, algo := range []distjoin.Algorithm{
		distjoin.HSKDJ, distjoin.BKDJ, distjoin.AMKDJ, distjoin.SJSort,
	} {
		var stats distjoin.Stats
		opts := &distjoin.Options{Algorithm: algo, Stats: &stats}
		if algo == distjoin.SJSort {
			opts.MaxDist = dmax
		}
		pairs, err := distjoin.KDistanceJoin(hotelIdx, restIdx, *k, opts)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) != len(oracle) {
			log.Fatalf("%v returned %d pairs, expected %d", algo, len(pairs), len(oracle))
		}
		for i := range pairs {
			if math.Abs(pairs[i].Dist-oracle[i].Dist) > 1e-9 {
				log.Fatalf("%v: result %d disagrees with oracle", algo, i)
			}
		}
		fmt.Printf("%-8v  %12d  %12d  %10d  %12v\n",
			algo, stats.DistCalcs(), stats.QueueInserts(),
			stats.NodeAccessesPhysical, stats.ResponseTime().Round(1000))
	}
	fmt.Println("\nall algorithms returned identical rankings; the adaptive")
	fmt.Println("multi-stage join needs the least work, as in the paper's Figure 10.")
}

// makeClustered drops objects into a few downtown blobs.
func makeClustered(rng *rand.Rand, n, clusters int) []distjoin.Object {
	type c struct{ x, y float64 }
	cs := make([]c, clusters)
	for i := range cs {
		cs[i] = c{rng.Float64() * 10000, rng.Float64() * 10000}
	}
	objs := make([]distjoin.Object, n)
	for i := range objs {
		b := cs[rng.Intn(clusters)]
		x := b.x + rng.NormFloat64()*300
		y := b.y + rng.NormFloat64()*300
		objs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.NewRect(x, y, x+5, y+5)}
	}
	return objs
}

// makeArterial scatters objects along a handful of long diagonal roads.
func makeArterial(rng *rand.Rand, n int) []distjoin.Object {
	const roads = 12
	objs := make([]distjoin.Object, n)
	for i := range objs {
		r := rng.Intn(roads)
		t := rng.Float64()
		// Road r runs from a pseudo-random edge point across the city.
		x0, y0 := float64(r)*800, 0.0
		x1, y1 := 10000-float64(r)*700, 10000.0
		x := x0 + t*(x1-x0) + rng.NormFloat64()*60
		y := y0 + t*(y1-y0) + rng.NormFloat64()*60
		objs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.NewRect(x, y, x+4, y+4)}
	}
	return objs
}
