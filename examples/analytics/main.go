// Analytics: the companion operations built on the same join engine —
// k-closest-pairs within one layer (collision/conflict detection),
// all-nearest-neighbors across layers (assignment), and the
// within-distance join (range association). A delivery scenario:
// warehouses, customers, and no-fly zones.
//
// Run with: go run ./examples/analytics [-customers 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	nCustomers := flag.Int("customers", 20000, "number of customers")
	flag.Parse()
	rng := rand.New(rand.NewSource(2024))

	// 40 warehouses, clustered customers, a handful of no-fly zones.
	warehouses := make([]distjoin.Object, 40)
	for i := range warehouses {
		warehouses[i] = distjoin.Object{
			ID:   int64(i),
			Rect: distjoin.PointRect(rng.Float64()*100000, rng.Float64()*100000),
		}
	}
	customers := make([]distjoin.Object, *nCustomers)
	for i := range customers {
		w := warehouses[rng.Intn(len(warehouses))].Rect.Center()
		customers[i] = distjoin.Object{
			ID:   int64(i),
			Rect: distjoin.PointRect(w.X+rng.NormFloat64()*4000, w.Y+rng.NormFloat64()*4000),
		}
	}
	zones := make([]distjoin.Object, 25)
	for i := range zones {
		x, y := rng.Float64()*100000, rng.Float64()*100000
		zones[i] = distjoin.Object{
			ID:   int64(i),
			Rect: distjoin.NewRect(x, y, x+2000+rng.Float64()*3000, y+2000+rng.Float64()*3000),
		}
	}

	whIdx := must(distjoin.NewIndex(warehouses, nil))
	custIdx := must(distjoin.NewIndex(customers, nil))
	zoneIdx := must(distjoin.NewIndex(zones, nil))

	// 1. KClosestPairs: which warehouses are redundantly close to each
	// other? (self-join; each unordered pair reported once)
	pairs, err := distjoin.KClosestPairs(whIdx, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5 most redundant warehouse pairs:")
	for _, p := range pairs {
		fmt.Printf("  W%d <-> W%d at %.0f\n", p.LeftID, p.RightID, p.Dist)
	}

	// 2. AllNearest: assign every customer to its closest warehouse.
	assignment := map[int64]int{}
	var worst distjoin.Pair
	if err := distjoin.AllNearest(custIdx, whIdx, nil, func(p distjoin.Pair) bool {
		assignment[p.RightID]++
		if p.Dist > worst.Dist {
			worst = p
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}
	busiest, load := int64(-1), 0
	for w, n := range assignment {
		if n > load {
			busiest, load = w, n
		}
	}
	fmt.Printf("\nassigned %d customers; busiest warehouse W%d serves %d;\n", len(customers), busiest, load)
	fmt.Printf("worst-served customer C%d is %.0f from W%d\n", worst.LeftID, worst.Dist, worst.RightID)

	// 3. WithinJoin: which warehouses sit within 1km of a no-fly zone?
	flagged := map[int64]bool{}
	if err := distjoin.WithinJoin(whIdx, zoneIdx, 1000, nil, func(p distjoin.Pair) bool {
		flagged[p.LeftID] = true
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d of %d warehouses are within 1km of a no-fly zone\n", len(flagged), len(warehouses))
}

func must(idx *distjoin.Index, err error) *distjoin.Index {
	if err != nil {
		log.Fatal(err)
	}
	return idx
}
