// Incremental: the "It is enough already!" workflow of the paper's
// introduction. An on-line application pulls nearest pairs batch by
// batch with no stopping cardinality declared up front — the user can
// stop whenever satisfied. The example pulls several batches from
// AM-IDJ and from the HS-IDJ baseline and prints the cumulative work
// after each batch, showing how the adaptive multi-stage algorithm
// avoids the slow-start problem.
//
// Run with: go run ./examples/incremental [-n 30000] [-batch 500] [-batches 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	n := flag.Int("n", 30000, "objects per data set")
	batch := flag.Int("batch", 500, "pairs per user request")
	batches := flag.Int("batches", 6, "number of user requests to simulate")
	flag.Parse()

	rng := rand.New(rand.NewSource(11))
	left, right := makeSets(rng, *n)
	leftIdx, err := distjoin.NewIndex(left, nil)
	if err != nil {
		log.Fatal(err)
	}
	rightIdx, err := distjoin.NewIndex(right, nil)
	if err != nil {
		log.Fatal(err)
	}

	for _, algo := range []distjoin.Algorithm{distjoin.AMKDJ, distjoin.HSKDJ} {
		name := "AM-IDJ"
		if algo == distjoin.HSKDJ {
			name = "HS-IDJ"
		}
		var stats distjoin.Stats
		it, err := distjoin.IncrementalJoin(leftIdx, rightIdx, &distjoin.Options{
			Algorithm: algo,
			Stats:     &stats,
			BatchK:    *batch,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s: pulling %d batches of %d pairs\n", name, *batches, *batch)
		fmt.Printf("  %8s  %12s  %14s  %12s\n", "pairs", "last dist", "dist calcs", "queue ins")
		stats.Start()
		produced := 0
		var last distjoin.Pair
		for b := 0; b < *batches; b++ {
			for i := 0; i < *batch; i++ {
				p, ok := it.Next()
				if !ok {
					if err := it.Err(); err != nil {
						log.Fatal(err)
					}
					fmt.Println("  (join exhausted)")
					return
				}
				last = p
				produced++
			}
			fmt.Printf("  %8d  %12.4f  %14d  %12d\n",
				produced, last.Dist, stats.DistCalcs(), stats.QueueInserts())
		}
		stats.Finish()
		fmt.Printf("  total response time: %v\n\n", stats.ResponseTime().Round(1000))
	}
	fmt.Println("AM-IDJ reaches each batch with a fraction of HS-IDJ's work —")
	fmt.Println("the paper's Figure 12/15 behaviour.")
}

func makeSets(rng *rand.Rand, n int) (left, right []distjoin.Object) {
	left = make([]distjoin.Object, n)
	right = make([]distjoin.Object, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*50000, rng.Float64()*50000
		left[i] = distjoin.Object{ID: int64(i), Rect: distjoin.NewRect(x, y, x+20, y+20)}
		x, y = rng.Float64()*50000, rng.Float64()*50000
		right[i] = distjoin.Object{ID: int64(i), Rect: distjoin.NewRect(x, y, x+20, y+20)}
	}
	return left, right
}
