// Serving: embedding the join engine in a long-running process with
// live observability. A registry is attached to every query and
// exported over HTTP; while a background workload of mixed blocking
// and incremental joins runs, the process can be inspected with:
//
//	curl -s localhost:9090/metrics   # Prometheus text: per-algorithm
//	                                 # counters, latency/work histograms,
//	                                 # eDmax-estimator accuracy
//	curl -s localhost:9090/queries   # live queries: algorithm, k, stage,
//	                                 # current eDmax, queue depths
//	curl -s localhost:9090/healthz
//	go tool pprof localhost:9090/debug/pprof/profile
//
// Run with: go run ./examples/serving [-addr :9090] [-duration 10s]
//
// The example drives its own load and scrapes its own endpoints so it
// terminates after -duration; a real service would just keep the
// server running for an external Prometheus to scrape.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"distjoin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "observability listen address")
	duration := flag.Duration("duration", 10*time.Second, "how long to run the demo workload")
	flag.Parse()

	// Two synthetic layers: clustered "stores" and uniform "clients".
	rng := rand.New(rand.NewSource(7))
	stores := make([]distjoin.Object, 4000)
	for i := range stores {
		cx, cy := float64(rng.Intn(8))*12500, float64(rng.Intn(8))*12500
		stores[i] = distjoin.Object{ID: int64(i), Rect: distjoin.PointRect(
			cx+rng.NormFloat64()*1500, cy+rng.NormFloat64()*1500)}
	}
	clients := make([]distjoin.Object, 6000)
	for i := range clients {
		clients[i] = distjoin.Object{ID: int64(i), Rect: distjoin.PointRect(
			rng.Float64()*100000, rng.Float64()*100000)}
	}
	left, err := distjoin.NewIndex(stores, nil)
	if err != nil {
		log.Fatal(err)
	}
	right, err := distjoin.NewIndex(clients, nil)
	if err != nil {
		log.Fatal(err)
	}

	// One registry for the whole process; every query below reports
	// into it. distjoin.DefaultRegistry() works too.
	reg := distjoin.NewRegistry()
	srv, err := distjoin.ServeObservability(*addr, reg)
	if err != nil {
		log.Fatal(err)
	}
	// Graceful exit: drain any in-flight scrape before the process
	// goes away, escalating to a hard Close only if the drain window
	// expires.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}()
	fmt.Printf("observability on http://%s/ for %v\n", srv.Addr(), *duration)

	// Background workload: blocking joins across algorithms plus an
	// incremental join that lingers in flight (visible in /queries).
	stop := time.Now().Add(*duration)
	go func() {
		algos := []distjoin.Algorithm{distjoin.AMKDJ, distjoin.BKDJ, distjoin.HSKDJ}
		for i := 0; time.Now().Before(stop); i++ {
			opts := &distjoin.Options{
				Algorithm: algos[i%len(algos)],
				Registry:  reg,
			}
			if _, err := distjoin.KDistanceJoin(left, right, 100+i%400, opts); err != nil {
				log.Printf("join: %v", err)
			}
			it, err := distjoin.IncrementalJoin(left, right,
				&distjoin.Options{Registry: reg, BatchK: 64})
			if err != nil {
				log.Printf("incremental: %v", err)
				continue
			}
			for j := 0; j < 500; j++ {
				if _, ok := it.Next(); !ok {
					// A false Next means exhausted *or* failed —
					// always distinguish via Err.
					if err := it.Err(); err != nil {
						log.Printf("incremental: %v", err)
					}
					break
				}
			}
			it.Close() // ends the query's registry entry
		}
	}()

	// Self-scrape a few times so the example shows the surfaces.
	for time.Now().Before(stop) {
		time.Sleep(*duration / 4)
		metrics, err := scrape(srv.Addr(), "/metrics")
		if err != nil {
			log.Printf("scrape /metrics: %v", err)
			continue
		}
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, "distjoin_queries_total") ||
				strings.HasPrefix(line, "distjoin_inflight_queries ") {
				fmt.Println(line)
			}
		}
		fmt.Println("---")
	}
	queries, err := scrape(srv.Addr(), "/queries")
	if err != nil {
		log.Printf("scrape /queries: %v", err)
		return
	}
	fmt.Println("done; final /queries:", queries)
}

// scrape fetches one observability endpoint. Non-200 statuses are
// errors: an overloaded or misrouted endpoint must be surfaced, not
// silently pasted into the output as if it were a healthy body.
func scrape(addr, path string) (string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}
