// Quickstart: index two small sets of points and print the five
// nearest pairs — the "hotels and restaurants" query from the paper's
// introduction:
//
//	SELECT h.name, r.name
//	FROM Hotel h, Restaurant r
//	ORDER BY distance(h.location, r.location)
//	STOP AFTER 5;
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distjoin"
)

func main() {
	hotels := []struct {
		name string
		x, y float64
	}{
		{"Grand Plaza", 2, 3}, {"Desert Rose", 40, 8}, {"Canyon Inn", 18, 22},
		{"Mesa Suites", 9, 30}, {"Saguaro Lodge", 33, 27},
	}
	restaurants := []struct {
		name string
		x, y float64
	}{
		{"Taco Sol", 3, 4}, {"Pasta Mia", 41, 10}, {"Noodle Bar", 20, 20},
		{"Le Jardin", 10, 28}, {"Smokehouse", 30, 30}, {"Curry Leaf", 25, 5},
	}

	hotelObjs := make([]distjoin.Object, len(hotels))
	for i, h := range hotels {
		hotelObjs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.PointRect(h.x, h.y)}
	}
	restObjs := make([]distjoin.Object, len(restaurants))
	for i, r := range restaurants {
		restObjs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.PointRect(r.x, r.y)}
	}

	hotelIdx, err := distjoin.NewIndex(hotelObjs, nil)
	if err != nil {
		log.Fatal(err)
	}
	restIdx, err := distjoin.NewIndex(restObjs, nil)
	if err != nil {
		log.Fatal(err)
	}

	pairs, err := distjoin.KDistanceJoin(hotelIdx, restIdx, 5, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The 5 closest hotel/restaurant pairs:")
	for i, p := range pairs {
		fmt.Printf("%d. %-14s <-> %-10s  distance %.2f\n",
			i+1, hotels[p.LeftID].name, restaurants[p.RightID].name, p.Dist)
	}
}
