// Tigerscale: persistent indexes and a GIS-style workload. Builds
// street-segment and hydrography data sets shaped like the paper's
// TIGER/Line inputs, persists both R*-tree indexes to disk files,
// reopens them, and answers a mixed workload: a window query, a
// nearest-neighbor probe, a k-distance join between the two layers
// ("which road segments run closest to water?"), and the same join
// re-ranked by exact segment geometry via a refiner.
//
// Run with: go run ./examples/tigerscale [-n 50000] [-dir /tmp/tiger]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"distjoin"
)

func main() {
	n := flag.Int("n", 50000, "street segments (hydro gets ~30% of this)")
	dir := flag.String("dir", "", "index directory (default: a temp dir)")
	flag.Parse()

	d := *dir
	if d == "" {
		var err error
		if d, err = os.MkdirTemp("", "tigerscale"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
	}

	rng := rand.New(rand.NewSource(3))
	streets, streetSegs := makeStreets(rng, *n)
	hydro := makeHydro(rng, *n*3/10)

	streetPath := filepath.Join(d, "streets.rtree")
	hydroPath := filepath.Join(d, "hydro.rtree")
	if _, err := distjoin.CreateIndexFile(streetPath, streets, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := distjoin.CreateIndexFile(hydroPath, hydro, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d street segments and %d hydro objects under %s\n",
		len(streets), len(hydro), d)

	// Reopen from disk, as a long-running service would.
	streetIdx, err := distjoin.OpenIndexFile(streetPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	hydroIdx, err := distjoin.OpenIndexFile(hydroPath, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Window query: everything in a map viewport.
	viewport := distjoin.NewRect(20000, 20000, 25000, 25000)
	inView := 0
	if err := streetIdx.Search(viewport, func(distjoin.Object) bool {
		inView++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewport %v contains %d street segments\n", viewport, inView)

	// 2. Nearest-neighbor probe: closest water to a point of interest.
	poi := distjoin.PointRect(31000, 47000)
	objs, dists, err := hydroIdx.Nearest(poi, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three nearest hydro objects to the POI:")
	for i := range objs {
		fmt.Printf("  hydro %d at distance %.1f\n", objs[i].ID, dists[i])
	}

	// 3. The paper's query: the k closest street/water pairs.
	var stats distjoin.Stats
	pairs, err := distjoin.KDistanceJoin(streetIdx, hydroIdx, 25, &distjoin.Options{Stats: &stats})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("25 closest street/water pairs (nearest at %.2f, farthest at %.2f)\n",
		pairs[0].Dist, pairs[len(pairs)-1].Dist)
	fmt.Printf("join stats: %v\n", &stats)

	// Sanity: distances nondecreasing.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Dist < pairs[i-1].Dist {
			log.Fatalf("results out of order at %d", i)
		}
	}

	// 4. The same join ranked by exact segment geometry: streets are
	// segments, so their MBR distance underestimates the true distance
	// of diagonal segments; the refiner fixes the ranking lazily.
	// (Hydro objects are area features; their MBR is the geometry.)
	refined, err := distjoin.KDistanceJoin(streetIdx, hydroIdx, 25, &distjoin.Options{
		Refiner: func(street, water distjoin.Object) float64 {
			// Streets are segments; hydro MBRs are the area geometry.
			return streetSegs[street.ID].DistToRect(water.Rect)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact-geometry ranking: nearest street/water pair at %.2f (MBR ranking said %.2f)\n",
		refined[0].Dist, pairs[0].Dist)
	fmt.Println("ok")
}

// makeStreets lays thin segment MBRs along random-walk roads,
// returning both the indexable objects and the exact segment
// geometries (keyed by object ID) for refinement.
func makeStreets(rng *rand.Rand, n int) ([]distjoin.Object, []distjoin.Segment) {
	objs := make([]distjoin.Object, 0, n)
	segs := make([]distjoin.Segment, 0, n)
	id := int64(0)
	for len(objs) < n {
		x, y := rng.Float64()*100000, rng.Float64()*100000
		heading := rng.Float64() * 2 * math.Pi
		for s := 0; s < 30 && len(objs) < n; s++ {
			length := 100 + rng.Float64()*400
			nx := x + math.Cos(heading)*length
			ny := y + math.Sin(heading)*length
			seg := distjoin.Segment{
				A: distjoin.Point{X: clamp(x), Y: clamp(y)},
				B: distjoin.Point{X: clamp(nx), Y: clamp(ny)},
			}
			objs = append(objs, distjoin.Object{ID: id, Rect: seg.Bounds()})
			segs = append(segs, seg)
			id++
			x, y = nx, ny
			heading += rng.NormFloat64() * 0.4
			if x < 0 || x > 100000 || y < 0 || y > 100000 {
				break
			}
		}
	}
	return objs, segs
}

// makeHydro drops lake blobs and short river runs.
func makeHydro(rng *rand.Rand, n int) []distjoin.Object {
	objs := make([]distjoin.Object, n)
	for i := range objs {
		x, y := rng.Float64()*100000, rng.Float64()*100000
		w, h := 50+rng.Float64()*600, 50+rng.Float64()*600
		objs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.NewRect(
			clamp(x), clamp(y), clamp(x+w), clamp(y+h))}
	}
	return objs
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100000 {
		return 100000
	}
	return v
}
