package distjoin_test

import (
	"fmt"
	"log"
	"math"

	"distjoin"
)

// The paper's motivating query: the k closest hotel/restaurant pairs.
func ExampleKDistanceJoin() {
	hotels, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(2, 3)},
		{ID: 1, Rect: distjoin.PointRect(40, 8)},
		{ID: 2, Rect: distjoin.PointRect(18, 22)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	restaurants, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(3, 4)},
		{ID: 1, Rect: distjoin.PointRect(41, 10)},
		{ID: 2, Rect: distjoin.PointRect(20, 20)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	pairs, err := distjoin.KDistanceJoin(hotels, restaurants, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		fmt.Printf("hotel %d - restaurant %d: %.2f\n", p.LeftID, p.RightID, p.Dist)
	}
	// Output:
	// hotel 0 - restaurant 0: 1.41
	// hotel 1 - restaurant 1: 2.24
}

// Incremental joins need no stopping cardinality: pull pairs until
// satisfied.
func ExampleIncrementalJoin() {
	left, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(0, 0)},
		{ID: 1, Rect: distjoin.PointRect(10, 0)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	right, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(1, 0)},
		{ID: 1, Rect: distjoin.PointRect(5, 0)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	it, err := distjoin.IncrementalJoin(left, right, nil)
	if err != nil {
		log.Fatal(err)
	}
	for {
		p, ok := it.Next()
		if !ok || p.Dist > 6 { // "enough already"
			break
		}
		fmt.Printf("%d-%d at %.0f\n", p.LeftID, p.RightID, p.Dist)
	}
	// Output:
	// 0-0 at 1
	// 0-1 at 5
	// 1-1 at 5
}

// Exact-geometry ranking via a refiner: MBR distances act as lower
// bounds, and each candidate is refined once at the queue head.
func ExampleOptions_refiner() {
	// Two "disk" objects, indexed by their bounding boxes.
	left, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.NewRect(0, 0, 2, 2)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	right, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.NewRect(4, 0, 6, 2)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Exact distance: between the inscribed circles of the boxes.
	refiner := func(a, b distjoin.Object) float64 {
		ca, cb := a.Rect.Center(), b.Rect.Center()
		centerDist := math.Hypot(ca.X-cb.X, ca.Y-cb.Y)
		return centerDist - a.Rect.Side(0)/2 - b.Rect.Side(0)/2
	}
	pairs, err := distjoin.KDistanceJoin(left, right, 1, &distjoin.Options{Refiner: refiner})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f\n", pairs[0].Dist)
	// Output:
	// 2
}

// Builder accumulates objects over time; Snapshot freezes them for
// queries.
func ExampleBuilder() {
	b, err := distjoin.NewBuilder(nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Insert(distjoin.Object{
			ID:   int64(i),
			Rect: distjoin.PointRect(float64(i*10), 0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	b.Delete(distjoin.Object{ID: 2, Rect: distjoin.PointRect(20, 0)})

	idx, err := b.Snapshot(nil)
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := distjoin.KClosestPairs(idx, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest pair: %d-%d at %.0f\n", pairs[0].LeftID, pairs[0].RightID, pairs[0].Dist)
	// Output:
	// closest pair: 0-1 at 10
}

// KNNJoin reports each left object's k nearest right objects.
func ExampleKNNJoin() {
	stores, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(0, 0)},
		{ID: 1, Rect: distjoin.PointRect(100, 0)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	depots, err := distjoin.NewIndex([]distjoin.Object{
		{ID: 0, Rect: distjoin.PointRect(3, 4)},
		{ID: 1, Rect: distjoin.PointRect(90, 0)},
		{ID: 2, Rect: distjoin.PointRect(200, 0)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := distjoin.KNNJoin(stores, depots, 2, nil, func(ns []distjoin.Pair) bool {
		fmt.Printf("store %d: depot %d (%.0f), depot %d (%.0f)\n",
			ns[0].LeftID, ns[0].RightID, ns[0].Dist, ns[1].RightID, ns[1].Dist)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// store 0: depot 0 (5), depot 1 (90)
	// store 1: depot 1 (10), depot 0 (97)
}
