package distjoin

// Benchmarks regenerating the paper's evaluation artifacts, one bench
// family per figure/table (DESIGN.md per-experiment index). Each runs
// the corresponding experiment at a reduced scale and reports the
// paper's metrics (distance computations, queue insertions, node
// accesses) alongside wall time:
//
//	go test -bench=. -benchmem
//
// For the full-resolution tables use cmd/distjoin-bench, which prints
// the same rows/series the paper reports at any scale.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"distjoin/internal/experiments"
	"distjoin/internal/join"
)

// benchConfig is deliberately small so the whole suite runs in tens of
// seconds; cmd/distjoin-bench exposes the larger scales.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.005, Seed: 1}
}

func loadBenchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	w, err := experiments.Load(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func reportKDJ(b *testing.B, w *experiments.Workload, algo experiments.Algo, k int, opts join.Options) {
	b.Helper()
	var dist, qins, nodes int64
	for i := 0; i < b.N; i++ {
		mc, err := w.RunKDJ(algo, k, opts)
		if err != nil {
			b.Fatal(err)
		}
		dist, qins, nodes = mc.DistCalcs(), mc.QueueInserts(), mc.NodeAccessesPhysical
	}
	b.ReportMetric(float64(dist), "distcalcs")
	b.ReportMetric(float64(qins), "queueins")
	b.ReportMetric(float64(nodes), "nodeio")
}

// BenchmarkFig10_KDJ regenerates Figure 10: k-distance join cost vs k
// for HS-KDJ, B-KDJ, AM-KDJ, and SJ-SORT.
func BenchmarkFig10_KDJ(b *testing.B) {
	w := loadBenchWorkload(b)
	for _, algo := range []experiments.Algo{
		experiments.AlgoHSKDJ, experiments.AlgoBKDJ,
		experiments.AlgoAMKDJ, experiments.AlgoSJSort,
	} {
		for _, k := range benchConfig().KSeries() {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				reportKDJ(b, w, algo, k, join.Options{})
			})
		}
	}
}

// BenchmarkTable2_NodeAccesses regenerates Table 2: R-tree node
// accesses per algorithm (the reported metric is physical reads with
// the 512 KB buffer; logical equals the unbuffered column).
func BenchmarkTable2_NodeAccesses(b *testing.B) {
	w := loadBenchWorkload(b)
	ks := benchConfig().Table2KSeries()
	k := ks[len(ks)-1]
	for _, algo := range []experiments.Algo{
		experiments.AlgoHSKDJ, experiments.AlgoBKDJ,
		experiments.AlgoAMKDJ, experiments.AlgoSJSort,
	} {
		b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
			var phys, logical int64
			for i := 0; i < b.N; i++ {
				mc, err := w.RunKDJ(algo, k, join.Options{})
				if err != nil {
					b.Fatal(err)
				}
				phys, logical = mc.NodeAccessesPhysical, mc.NodeAccessesLogical
			}
			b.ReportMetric(float64(phys), "nodeio")
			b.ReportMetric(float64(logical), "nodeio-unbuf")
		})
	}
}

// BenchmarkFig11_SweepOptimization regenerates Figure 11: B-KDJ with
// the optimized plane sweep vs the fixed x-axis forward sweep.
func BenchmarkFig11_SweepOptimization(b *testing.B) {
	w := loadBenchWorkload(b)
	ks := benchConfig().KSeries()
	k := ks[len(ks)-1]
	fixed := join.FixedSweep
	b.Run("optimized", func(b *testing.B) {
		reportKDJ(b, w, experiments.AlgoBKDJ, k, join.Options{})
	})
	b.Run("fixed", func(b *testing.B) {
		reportKDJ(b, w, experiments.AlgoBKDJ, k, join.Options{Sweep: &fixed})
	})
}

// BenchmarkFig12_IDJ regenerates Figure 12: incremental distance join
// cost vs k for HS-IDJ and AM-IDJ.
func BenchmarkFig12_IDJ(b *testing.B) {
	w := loadBenchWorkload(b)
	for _, algo := range []experiments.Algo{experiments.AlgoHSIDJ, experiments.AlgoAMIDJ} {
		for _, k := range benchConfig().KSeries() {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				var dist, qins int64
				for i := 0; i < b.N; i++ {
					mc, err := w.RunIDJ(algo, k, join.Options{})
					if err != nil {
						b.Fatal(err)
					}
					dist, qins = mc.DistCalcs(), mc.QueueInserts()
				}
				b.ReportMetric(float64(dist), "distcalcs")
				b.ReportMetric(float64(qins), "queueins")
			})
		}
	}
}

// BenchmarkFig13_Memory regenerates Figure 13: response vs the memory
// granted to the main queue and R-tree buffers.
func BenchmarkFig13_Memory(b *testing.B) {
	w := loadBenchWorkload(b)
	ks := benchConfig().KSeries()
	k := ks[len(ks)-1]
	for _, kb := range []int{16, 64, 256} {
		mem := kb * 1024
		for _, algo := range []experiments.Algo{
			experiments.AlgoHSKDJ, experiments.AlgoBKDJ, experiments.AlgoAMKDJ,
		} {
			b.Run(fmt.Sprintf("mem=%dKB/%s", kb, algo), func(b *testing.B) {
				w.Streets.ResizeBuffer(mem)
				w.Hydro.ResizeBuffer(mem)
				defer func() {
					w.Streets.ResizeBuffer(512 * 1024)
					w.Hydro.ResizeBuffer(512 * 1024)
				}()
				reportKDJ(b, w, algo, k, join.Options{QueueMemBytes: mem})
			})
		}
	}
}

// BenchmarkFig14_EDmax regenerates Figure 14: AM-KDJ cost vs the
// accuracy of the eDmax estimate.
func BenchmarkFig14_EDmax(b *testing.B) {
	w := loadBenchWorkload(b)
	ks := benchConfig().KSeries()
	k := ks[len(ks)-1]
	dmax, err := w.Dmax(k)
	if err != nil {
		b.Fatal(err)
	}
	if dmax == 0 {
		dmax = 1 // all-zero tail: factor sweep still exercises both stages
	}
	for _, f := range []float64{0.1, 0.5, 1, 2, 10} {
		b.Run(fmt.Sprintf("eDmax=%gx", f), func(b *testing.B) {
			reportKDJ(b, w, experiments.AlgoAMKDJ, k, join.Options{EDmax: dmax * f})
		})
	}
}

// BenchmarkFig15_Stepwise regenerates Figure 15: stepwise incremental
// execution, pulling ten batches from one incremental join.
func BenchmarkFig15_Stepwise(b *testing.B) {
	w := loadBenchWorkload(b)
	batch := benchConfig().KSeries()[2] // a mid-size batch
	for _, algo := range []experiments.Algo{experiments.AlgoHSIDJ, experiments.AlgoAMIDJ} {
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mc, err := w.RunIDJ(algo, 10*batch, join.Options{BatchK: batch})
				if err != nil {
					b.Fatal(err)
				}
				if mc.ResultsProduced == 0 {
					b.Fatal("no results produced")
				}
			}
		})
	}
}

// BenchmarkIndexBuild measures STR bulk loading plus page packing, the
// setup cost of every experiment.
func BenchmarkIndexBuild(b *testing.B) {
	rngObjs := make([]Object, 20000)
	for i := range rngObjs {
		x := float64(i%141) * 7
		y := float64(i/141) * 11
		rngObjs[i] = Object{ID: int64(i), Rect: NewRect(x, y, x+5, y+5)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIndex(rngObjs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOperations measures the companion operations on a mid-size
// workload: self k-closest-pairs, all-nearest-neighbors, within join.
func BenchmarkOperations(b *testing.B) {
	objs := make([]Object, 20000)
	for i := range objs {
		x := float64((i * 2654435761) % 100000)
		y := float64((i * 40503) % 100000)
		objs[i] = Object{ID: int64(i), Rect: NewRect(x, y, x+10, y+10)}
	}
	idx, err := NewIndex(objs, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("KClosestPairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := KClosestPairs(idx, 100, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AllNearest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := AllNearest(idx, idx, nil, func(Pair) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WithinJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := WithinJoin(idx, idx, 25, nil, func(Pair) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Parallel engine benchmarks: serial vs worker-pool AM-KDJ on a uniform
// 50k x 50k workload. The parallel run returns byte-identical results;
// the interesting number is wall time vs GOMAXPROCS (see
// docs/parallel.md for recorded speedups). On a single-CPU host the
// parallel path measures pure coordination overhead.

var parallelBench struct {
	once        sync.Once
	left, right *Index
	err         error
}

func parallelBenchIndexes(b *testing.B) (*Index, *Index) {
	b.Helper()
	parallelBench.once.Do(func() {
		rng := rand.New(rand.NewSource(42))
		a := randObjects(rng, 50000, 100000, 30)
		c := randObjects(rng, 50000, 100000, 30)
		parallelBench.left, parallelBench.err = NewIndex(a, &IndexConfig{BufferBytes: 8 << 20})
		if parallelBench.err != nil {
			return
		}
		parallelBench.right, parallelBench.err = NewIndex(c, &IndexConfig{BufferBytes: 8 << 20})
	})
	if parallelBench.err != nil {
		b.Fatal(parallelBench.err)
	}
	return parallelBench.left, parallelBench.right
}

func benchAMKDJ(b *testing.B, parallelism int) {
	left, right := parallelBenchIndexes(b)
	const k = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := KDistanceJoin(left, right, k, &Options{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != k {
			b.Fatalf("got %d results, want %d", len(got), k)
		}
	}
}

// BenchmarkAMKDJSerial is the single-goroutine baseline.
func BenchmarkAMKDJSerial(b *testing.B) { benchAMKDJ(b, 1) }

// BenchmarkAMKDJParallel uses one expansion worker per CPU.
func BenchmarkAMKDJParallel(b *testing.B) { benchAMKDJ(b, AutoParallelism) }

// BenchmarkAMKDJParallelWorkers sweeps fixed worker counts.
func BenchmarkAMKDJParallelWorkers(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) { benchAMKDJ(b, p) })
	}
}

// BenchmarkAMKDJSharded sweeps the partition-parallel executor: the
// same 50k x 50k workload grid-partitioned into Shards shards, with
// partition pairs joined on a per-CPU worker pool under bounds-only
// pruning. Compare against BenchmarkAMKDJParallel — on a multi-core
// host the sharded run's independent per-shard joins scale past the
// single-tree engine's barrier-synchronized expansion workers.
func BenchmarkAMKDJSharded(b *testing.B) {
	for _, s := range []int{4, 9, 16} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			left, right := parallelBenchIndexes(b)
			const k = 10000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := KDistanceJoin(left, right, k, &Options{Shards: s, Parallelism: AutoParallelism})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != k {
					b.Fatalf("got %d results, want %d", len(got), k)
				}
			}
		})
	}
}
